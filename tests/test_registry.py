"""Registry semantics + the registered scenario layer."""

import numpy as np
import pytest

from repro.registry import (ACCELERATORS, DATASETS, EXPERIMENTS, SUITES,
                            AcceleratorEntry, DatasetEntry, Registry,
                            RegistryError, SuiteEntry, get_accelerator,
                            get_dataset, get_suite)


class TestRegistrySemantics:
    def test_duplicate_registration_raises(self):
        reg = Registry("thing")
        reg.add("a", 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.add("a", 2)

    def test_duplicate_is_case_insensitive(self):
        reg = Registry("thing")
        reg.add("Widget", 1)
        with pytest.raises(RegistryError):
            reg.add("widget", 2)

    def test_unknown_lookup_lists_available(self):
        reg = Registry("gadget")
        reg.add("alpha", 1)
        reg.add("beta", 2)
        with pytest.raises(RegistryError) as exc:
            reg.get("gamma")
        message = str(exc.value)
        assert "gamma" in message and "alpha" in message and "beta" in message

    def test_lookup_case_insensitive(self):
        reg = Registry("thing")
        reg.add("Alpha", 42)
        assert reg.get("alpha") == 42
        assert "ALPHA" in reg

    def test_unregister_allows_replacement(self):
        reg = Registry("thing")
        reg.add("a", 1)
        reg.unregister("a")
        reg.add("a", 2)
        assert reg.get("a") == 2

    def test_decorator_registration(self):
        reg = Registry("fn")

        @reg.register("double")
        def double(x):
            return 2 * x

        assert reg.get("double") is double

    def test_names_sorted(self):
        reg = Registry("thing")
        reg.add("b", 1)
        reg.add("a", 2)
        assert reg.names() == ("a", "b")


class TestAcceleratorRegistry:
    def test_builtin_accelerators_present(self):
        for name in ("mega", "mega-bitmap", "mega-no-condense",
                     "hygcn", "gcnax", "grow", "sgcn",
                     "hygcn-8bit", "gcnax-8bit", "hygcn-c",
                     "gcnax-original", "grow-original"):
            assert name in ACCELERATORS, name

    def test_precision_metadata(self):
        assert get_accelerator("mega").precision == "degree-aware"
        assert get_accelerator("mega-bitmap").precision == "degree-aware"
        assert get_accelerator("hygcn-8bit").precision == "int8"
        assert get_accelerator("grow").precision == "fp32"

    def test_build_instantiates_models(self):
        from repro.baselines.generic import GenericAcceleratorModel
        from repro.mega import MegaModel

        assert isinstance(get_accelerator("mega").build(), MegaModel)
        assert isinstance(get_accelerator("sgcn").build(),
                          GenericAcceleratorModel)

    def test_ablation_entries_preset_defaults(self):
        model = get_accelerator("mega-bitmap").build()
        assert model.storage == "bitmap" and not model.condense
        model = get_accelerator("mega-no-condense").build()
        assert model.storage == "adaptive-package" and not model.condense

    def test_variant_kwargs_override_preset(self):
        model = get_accelerator("mega-no-condense").build(condense=True)
        assert model.condense

    def test_fixed_preset_rejects_variants(self):
        with pytest.raises(ValueError, match="variant"):
            get_accelerator("hygcn").build(condense=False)

    def test_custom_registration_roundtrip(self):
        entry = AcceleratorEntry(name="test-accel", factory=lambda: "model",
                                 precision="fp32")
        ACCELERATORS.add("test-accel", entry)
        try:
            assert get_accelerator("test-accel").build() == "model"
        finally:
            ACCELERATORS.unregister("test-accel")


class TestDatasetRegistry:
    def test_paper_and_scenario_datasets_present(self):
        for name in ("cora", "citeseer", "pubmed", "nell", "reddit",
                     "powerlaw-10k", "powerlaw-500k", "community-50k"):
            assert name in DATASETS, name

    def test_paper_entry_matches_load_dataset(self):
        from repro.graphs import load_dataset

        via_registry = get_dataset("cora").load(scale="tiny", seed=0)
        direct = load_dataset("cora", scale="tiny", seed=0)
        assert (via_registry.adjacency != direct.adjacency).nnz == 0
        assert np.array_equal(via_registry.features, direct.features)

    def test_scenario_loads_all_scales(self):
        entry = get_dataset("powerlaw-10k")
        tiny = entry.load(scale="tiny")
        train = entry.load(scale="train")
        assert tiny.num_nodes == 256
        assert train.num_nodes == 4096
        assert entry.num_classes == 16
        with pytest.raises(ValueError):
            entry.load(scale="huge")

    def test_scenario_sim_scale_counts(self):
        graph = get_dataset("powerlaw-10k").load(scale="sim")
        assert graph.num_nodes == 10_000
        degrees = np.diff(graph.adjacency.tocsr().indptr)
        # Power-law tail: the hubs dwarf the median degree.
        assert degrees.max() > 10 * max(np.median(degrees), 1)

    def test_scenario_feature_stats_deterministic(self):
        entry = get_dataset("community-10k")
        dim_a, nnz_a = entry.feature_stats(rng=np.random.default_rng(3))
        dim_b, nnz_b = entry.feature_stats(rng=np.random.default_rng(3))
        assert dim_a == dim_b == 256
        assert len(nnz_a) == 10_000
        assert np.array_equal(nnz_a, nnz_b)

    def test_scenario_workload_defaults(self):
        entry = get_dataset("powerlaw-10k")
        assert entry.hidden_density("gcn") == pytest.approx(0.5)
        assert entry.average_bits("gcn") == pytest.approx(2.5)

    def test_paper_entry_paper_constants(self):
        from repro.paper_data import FIG5_HIDDEN_DENSITY, PAPER_AVERAGE_BITS

        entry = get_dataset("pubmed")
        assert entry.hidden_density("gin") == FIG5_HIDDEN_DENSITY["gin"]["pubmed"]
        assert entry.average_bits("gcn") == PAPER_AVERAGE_BITS["gcn"]["pubmed"]


class TestSuiteRegistry:
    def test_builtin_suites(self):
        from repro.eval.experiments import PAPER_WORKLOADS

        assert get_suite("paper").workloads == PAPER_WORKLOADS
        assert len(get_suite("quick").workloads) == 5
        assert all(ds in DATASETS for ds, _ in get_suite("scale-sweep").workloads)

    def test_scale_sweep_10k_suite_is_ci_sized(self):
        suite = get_suite("scale-sweep-10k")
        assert suite.workloads
        assert all(ds.endswith("-10k") for ds, _ in suite.workloads)
        assert all(ds in DATASETS for ds, _ in suite.workloads)

    def test_suite_datasets_deduplicated(self):
        suite = SuiteEntry("s", (("cora", "gcn"), ("cora", "gin"),
                                 ("pubmed", "gcn")))
        assert suite.datasets == ("cora", "pubmed")


class TestScenarioThroughEngine:
    def test_scale_sweep_scenario_runs_through_cached_engine(self, sweep_engine):
        """A registered synthetic scenario executes through the same
        SimJob path as the paper graphs, and replays from the cache."""
        from repro.eval.engine import SimJob

        jobs = [SimJob.from_call(name, "powerlaw-10k", "gcn")
                for name in ("hygcn", "mega")]
        reports = sweep_engine.run(jobs)
        assert sweep_engine.executed_jobs == 2
        hygcn, mega = reports[jobs[0]], reports[jobs[1]]
        assert mega.total_cycles < hygcn.total_cycles
        assert hygcn.workload == "powerlaw-10k-gcn-fp32"

        # Warm replay: a fresh engine over the same store executes nothing.
        from repro.eval.engine import SweepEngine
        from repro.eval.experiments import clear_caches

        clear_caches()
        warm = SweepEngine(workers=0, cache_dir=sweep_engine.disk.directory.parents[2])
        warm_reports = warm.run(jobs)
        assert warm.executed_jobs == 0
        assert warm_reports[jobs[1]].total_cycles == mega.total_cycles

    def test_train_multiple_seeds_accepts_hyphenated_scenarios(self, sweep_engine):
        """Declarative multi-seed training parses scenario names whose
        dataset part itself contains hyphens (powerlaw-10k etc.)."""
        from repro.nn import TrainConfig
        from repro.nn.training import train_multiple_seeds

        out = train_multiple_seeds(
            "gcn", "powerlaw-10k", seeds=[0],
            config=TrainConfig(epochs=2, patience=100))
        assert out["runs"] == 1
        assert 0.0 <= out["mean_accuracy"] <= 1.0

        # A loaded scenario graph ("powerlaw-10k-tiny") parses too.
        from repro.perf.cache import cached_load_dataset

        graph = cached_load_dataset("powerlaw-10k", scale="tiny")
        out = train_multiple_seeds(
            "gcn", graph, seeds=[0], config=TrainConfig(epochs=2, patience=100))
        assert out["runs"] == 1

    def test_entry_version_token_invalidates_cache(self, sweep_engine):
        """Re-registering an accelerator with a new version token misses
        the disk cache (runtime-registered entries aren't covered by the
        source digest)."""
        from dataclasses import replace

        from repro.eval.engine import SimJob

        base = ACCELERATORS.get("hygcn")
        ACCELERATORS.add("custom-accel", replace(base, name="custom-accel",
                                                 version="v1"))
        try:
            job = SimJob.from_call("custom-accel", "cora", "gcn")
            fp_v1 = sweep_engine.job_fingerprint(job)
            ACCELERATORS.unregister("custom-accel")
            ACCELERATORS.add("custom-accel", replace(base, name="custom-accel",
                                                     version="v2"))
            assert sweep_engine.job_fingerprint(job) != fp_v1
        finally:
            ACCELERATORS.unregister("custom-accel")

    def test_scenario_spec_edit_invalidates_cache(self, sweep_engine):
        """Editing a scenario's generation parameters changes the job
        fingerprint even when the adjacency would be unchanged."""
        from repro.eval.engine import SimJob
        from repro.graphs.datasets import SCENARIO_SPECS, scenario_entry
        from dataclasses import replace

        spec = SCENARIO_SPECS["powerlaw-10k"]
        DATASETS.add("custom-scn", scenario_entry(replace(spec, name="custom-scn")))
        try:
            job = SimJob.from_call("hygcn", "custom-scn", "gcn")
            fp_a = sweep_engine.job_fingerprint(job)
            DATASETS.unregister("custom-scn")
            DATASETS.add("custom-scn", scenario_entry(
                replace(spec, name="custom-scn", feature_density=0.2)))
            assert sweep_engine.job_fingerprint(job) != fp_a
        finally:
            DATASETS.unregister("custom-scn")

    def test_unknown_dataset_fails_with_listing(self, sweep_engine):
        from repro.eval.engine import SimJob

        with pytest.raises(RegistryError, match="powerlaw-10k"):
            sweep_engine.run([SimJob.from_call("mega", "no-such-graph", "gcn")])

    def test_unknown_accelerator_fails_with_listing(self):
        from repro.eval.engine import SimJob

        job = SimJob.from_call("warp-drive", "cora", "gcn")
        with pytest.raises(RegistryError, match="mega"):
            job.precision


class TestClockGhz:
    def test_default_reports_unchanged_at_1ghz(self, sweep_engine):
        report = sweep_engine.simulate("hygcn", "cora", "gcn")
        assert report.clock_ghz == 1.0
        assert report.seconds == pytest.approx(report.total_cycles / 1e9)

    def test_custom_clock_scales_seconds(self):
        from repro.sim.accelerator import SimReport
        from repro.sim.dram import DramTraffic
        from repro.sim.energy import EnergyBreakdown

        rep = SimReport("a", "w", 1e9, 0.0, 2e9, 0.0, DramTraffic(),
                        EnergyBreakdown(0, 0, 0, 0), clock_ghz=2.0)
        assert rep.seconds == pytest.approx(1.0)

    def test_model_clock_carried_into_report(self):
        from repro.baselines import build_baseline
        from repro.perf.cache import cached_load_dataset
        from repro.sim.workload import build_workload

        graph = cached_load_dataset("cora", scale="tiny")
        workload = build_workload("cora", "gcn", "fp32", graph=graph)
        model = build_baseline("hygcn")
        model.clock_ghz = 2.0
        report = model.simulate(workload)
        assert report.clock_ghz == 2.0
        assert report.seconds == pytest.approx(report.total_cycles / 2e9)
