"""Tests for GNN layers, models, module system and the training loop."""

import numpy as np
import pytest

from repro.graphs import load_dataset
from repro.nn import (
    GAT,
    GCN,
    GIN,
    GraphSage,
    Linear,
    MLP,
    Module,
    TrainConfig,
    build_model,
    evaluate,
    train,
    train_multiple_seeds,
)
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", scale="tiny")


class TestModule:
    def test_parameter_discovery(self):
        lin = Linear(4, 3)
        params = lin.parameters()
        assert len(params) == 2  # weight + bias

    def test_nested_discovery(self):
        mlp = MLP(4, 8, 2)
        assert len(mlp.parameters()) == 4

    def test_named_parameters_unique(self):
        mlp = MLP(4, 8, 2)
        names = [n for n, _ in mlp.named_parameters()]
        assert len(names) == len(set(names))

    def test_state_dict_roundtrip(self):
        a, b = MLP(4, 8, 2, rng=np.random.default_rng(0)), MLP(4, 8, 2, rng=np.random.default_rng(1))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        np.testing.assert_allclose(a(x).data, b(x).data, atol=1e-6)

    def test_load_state_dict_missing_raises(self):
        mlp = MLP(4, 8, 2)
        with pytest.raises(KeyError):
            mlp.load_state_dict({})

    def test_train_eval_flags(self):
        mlp = MLP(2, 2, 2)
        assert mlp.training
        mlp.eval()
        assert not mlp.training and not mlp.fc1.training
        mlp.train()
        assert mlp.fc2.training

    def test_zero_grad(self):
        lin = Linear(2, 2)
        lin(Tensor(np.ones((1, 2), dtype=np.float32))).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None


class TestModels:
    @pytest.mark.parametrize("name,cls", [("gcn", GCN), ("gin", GIN),
                                          ("graphsage", GraphSage), ("gat", GAT)])
    def test_forward_shapes(self, graph, name, cls):
        model = build_model(name, graph.feature_dim, graph.num_classes, seed=0)
        assert isinstance(model, cls)
        logits = model(Tensor(graph.features), graph)
        assert logits.shape == (graph.num_nodes, graph.num_classes)

    def test_eval_deterministic(self, graph):
        model = build_model("gcn", graph.feature_dim, graph.num_classes, seed=0)
        model.eval()
        a = model(Tensor(graph.features), graph).data
        b = model(Tensor(graph.features), graph).data
        np.testing.assert_allclose(a, b)

    def test_dropout_changes_train_forward(self, graph):
        model = build_model("gcn", graph.feature_dim, graph.num_classes, seed=0)
        model.train()
        a = model(Tensor(graph.features), graph).data
        b = model(Tensor(graph.features), graph).data
        assert not np.allclose(a, b)

    def test_hidden_features_shape(self, graph):
        model = build_model("gcn", graph.feature_dim, graph.num_classes, seed=0)
        hidden = model.hidden_features(Tensor(graph.features), graph)
        assert hidden.shape == (graph.num_nodes, 128)
        assert (hidden.data >= 0).all()  # post-ReLU

    def test_graphsage_samples_neighbors(self, graph):
        model = build_model("graphsage", graph.feature_dim, graph.num_classes,
                            seed=0, sample_neighbors=3)
        adj = model._adjacency(graph)
        row_nnz = np.diff(adj.indptr)
        assert row_nnz.max() <= 3

    def test_unknown_model_raises(self, graph):
        with pytest.raises(ValueError):
            build_model("transformer", 4, 2)

    def test_hidden_dim_override(self, graph):
        model = build_model("gcn", graph.feature_dim, graph.num_classes,
                            hidden_dim=16, seed=0)
        assert model.layer1.weight.shape == (graph.feature_dim, 16)

    def test_gradients_reach_all_parameters(self, graph):
        model = build_model("gin", graph.feature_dim, graph.num_classes, seed=0)
        from repro.tensor import functional as F
        logits = model(Tensor(graph.features), graph)
        F.cross_entropy(logits, graph.labels, graph.train_mask).backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, f"no grad for {name}"


class TestTraining:
    def test_training_beats_random(self, graph):
        model = build_model("gcn", graph.feature_dim, graph.num_classes, seed=0)
        result = train(model, graph, TrainConfig(epochs=30, patience=30))
        assert result.test_accuracy > 1.5 / graph.num_classes

    def test_early_stopping(self, graph):
        model = build_model("gcn", graph.feature_dim, graph.num_classes, seed=0)
        result = train(model, graph, TrainConfig(epochs=500, patience=3))
        assert result.epochs_run < 500

    def test_history_recorded(self, graph):
        model = build_model("gcn", graph.feature_dim, graph.num_classes, seed=0)
        result = train(model, graph, TrainConfig(epochs=5, patience=10))
        assert len(result.history) == result.epochs_run
        assert {"epoch", "loss", "val_acc"} <= set(result.history[0])

    def test_extra_loss_applied(self, graph):
        calls = []

        def extra():
            calls.append(1)
            return None

        model = build_model("gcn", graph.feature_dim, graph.num_classes, seed=0)
        train(model, graph, TrainConfig(epochs=3, patience=10), extra_loss=extra)
        assert len(calls) == 3

    def test_select_when_gates_best(self, graph):
        model = build_model("gcn", graph.feature_dim, graph.num_classes, seed=0)
        result = train(model, graph, TrainConfig(epochs=3, patience=10),
                       select_when=lambda: False)
        assert result.test_accuracy == 0.0

    def test_evaluate_range(self, graph):
        model = build_model("gcn", graph.feature_dim, graph.num_classes, seed=0)
        acc = evaluate(model, graph, graph.test_mask)
        assert 0.0 <= acc <= 1.0

    def test_multiple_seeds_stats(self, graph):
        stats = train_multiple_seeds(
            lambda seed: build_model("gcn", graph.feature_dim,
                                     graph.num_classes, seed=seed),
            graph, seeds=[0, 1], config=TrainConfig(epochs=5, patience=10))
        assert stats["runs"] == 2
        assert 0 <= stats["mean_accuracy"] <= 1
        assert stats["std_accuracy"] >= 0
