"""Equivalence of the vectorized hot kernels vs the seed references,
plus the repro.perf cache/timer/bench subsystem itself.

The Adaptive-Package encoder, CondenseUnit and CSR decode must be
*bit-identical* to the seed pure-Python loops preserved in
:mod:`repro.perf.reference` — same package stream, same Sparse Buffer
layout, same hardware counters.  Neighbor sampling is held to
distributional equivalence (uniform without replacement, same per-row
counts): it consumes the RNG differently than the seed loop, so the
drawn edge set for a given seed legitimately differs.
"""

import json

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.formats import AdaptivePackageFormat, CsrFormat, PackageConfig
from repro.graphs import (
    coo_view,
    cross_edge_mask,
    partition_graph,
    synthetic_graph,
)
from repro.mega import CondenseUnit, condense_layout
from repro.perf import (
    Timer,
    cache_stats,
    cached_load_dataset,
    cached_partition,
    clear_all_caches,
    graph_fingerprint,
    time_callable,
)
from repro.perf.bench import BENCH_SIZES, run_benchmarks
from repro.perf.cache import PARTITION_CACHE
from repro.perf.reference import (
    CondenseUnitReference,
    csr_decode_reference,
    encode_adaptive_package_reference,
    sample_neighbors_reference,
)


def random_quantized_matrix(rng, n, f, density, signed=False):
    bits = rng.choice([1, 2, 3, 4, 8], size=n).astype(np.int64)
    low = -200 if signed else 0
    vals = (rng.integers(low, 200, size=(n, f))
            * (rng.random((n, f)) < density)).astype(np.int64)
    if signed:
        np.clip(vals, -(2 ** (bits - 1))[:, None], (2 ** bits - 1)[:, None],
                out=vals)
    else:
        vals = np.minimum(vals, (2 ** bits - 1)[:, None])
    return vals, bits


def random_partitioned_graph(seed, num_nodes=120, num_parts=5):
    rng = np.random.default_rng(seed)
    edges = int(rng.integers(num_nodes, num_nodes * 6))
    graph = synthetic_graph(num_nodes, edges, 8, 4, seed=seed)
    parts = rng.integers(0, num_parts, size=num_nodes).astype(np.int64)
    parts[rng.integers(0, num_nodes)] = num_parts - 1  # every id present
    return graph, parts


class TestAdaptivePackageEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_bit_identical_to_reference(self, seed):
        rng = np.random.default_rng(seed)
        n, f = int(rng.integers(1, 60)), int(rng.integers(1, 40))
        vals, bits = random_quantized_matrix(rng, n, f,
                                             density=float(rng.uniform(0, 0.8)),
                                             signed=bool(rng.integers(0, 2)))
        cfg = PackageConfig() if seed % 3 else PackageConfig(16, 24, 32)
        fmt = AdaptivePackageFormat(cfg)
        fast = fmt.encode(vals, bits)
        ref = encode_adaptive_package_reference(vals, bits, cfg)

        assert fast.num_packages == ref.num_packages
        for a, b in zip(fast.packages, ref.packages):
            assert a.mode == b.mode
            assert a.bitwidth == b.bitwidth
            np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(fast.bitmap, ref.bitmap)
        if ref.signs is None:
            assert fast.signs is None
        else:
            np.testing.assert_array_equal(fast.signs, ref.signs)
        assert fast.report().total_bits == ref.report().total_bits
        assert fast.report().breakdown == ref.report().breakdown
        np.testing.assert_array_equal(fmt.decode(fast), vals)

    def test_soa_and_materialized_reports_agree(self):
        rng = np.random.default_rng(7)
        vals, bits = random_quantized_matrix(rng, 50, 30, 0.3)
        fmt = AdaptivePackageFormat()
        encoded = fmt.encode(vals, bits)
        soa_report = encoded.report()
        _ = encoded.packages  # materialize
        encoded._pkg_modes = None  # force the package-list accounting path
        assert encoded.report().breakdown == soa_report.breakdown

    def test_empty_and_all_zero_inputs(self):
        fmt = AdaptivePackageFormat()
        for n, f in ((0, 4), (5, 8)):
            vals = np.zeros((n, f), dtype=np.int64)
            bits = np.full(n, 4, dtype=np.int64)
            encoded = fmt.encode(vals, bits)
            assert encoded.num_packages == 0
            assert encoded.packages == []
            np.testing.assert_array_equal(fmt.decode(encoded), vals)


class TestCondenseEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_run_matches_reference(self, seed):
        graph, parts = random_partitioned_graph(seed)
        fast = CondenseUnit(graph.adjacency, parts)
        ref = CondenseUnitReference(graph.adjacency, parts)
        assert fast.run() == ref.run()
        assert fast.matches == ref.matches
        assert fast.comparisons == ref.comparisons
        assert fast.address_list == ref.address_list
        assert fast.remaining_eids() == ref.remaining_eids() == 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_property_step_by_step_matches_reference(self, seed):
        graph, parts = random_partitioned_graph(seed, num_nodes=60)
        fast = CondenseUnit(graph.adjacency, parts)
        ref = CondenseUnitReference(graph.adjacency, parts)
        for node in range(graph.num_nodes):
            assert fast.on_node_combined(node) == ref.on_node_combined(node)
        assert fast.sparse_buffer == ref.sparse_buffer
        assert fast.comparisons == ref.comparisons

    def test_run_after_partial_stepping(self):
        graph, parts = random_partitioned_graph(3)
        fast = CondenseUnit(graph.adjacency, parts)
        ref = CondenseUnitReference(graph.adjacency, parts)
        for node in range(10):
            fast.on_node_combined(node)
            ref.on_node_combined(node)
        assert fast.run() == ref.run()
        assert fast.comparisons == ref.comparisons
        assert fast.remaining_eids() == 0

    def test_layout_matches_vectorized_oracle(self):
        graph, parts = random_partitioned_graph(11)
        buffer = CondenseUnit(graph.adjacency, parts).run()
        layout = condense_layout(graph.adjacency, parts)
        for p, sources in layout.items():
            assert buffer[p] == sources.tolist()


class TestSamplingAndDecode:
    def test_sample_neighbors_matches_reference_distribution_shape(self):
        graph = synthetic_graph(300, 2500, 8, 4, seed=0)
        sampled = graph.sample_neighbors(3)
        reference = sample_neighbors_reference(graph.adjacency, 3)
        np.testing.assert_array_equal(
            np.minimum(np.diff(graph.adjacency.tocsr().indptr), 3),
            np.diff(sampled.adjacency.indptr))
        np.testing.assert_array_equal(np.diff(sampled.adjacency.indptr),
                                      np.diff(reference.indptr))

    def test_sample_neighbors_subset_of_original(self):
        graph = synthetic_graph(200, 1800, 8, 4, seed=1)
        sampled = graph.sample_neighbors(2).adjacency.astype(bool)
        original = graph.adjacency.astype(bool)
        assert (sampled.multiply(original) != sampled).nnz == 0

    def test_sample_neighbors_keeps_small_rows_intact(self):
        graph = synthetic_graph(200, 1000, 8, 4, seed=2)
        kept = graph.sample_neighbors(10 ** 6).adjacency.astype(bool)
        assert (kept != graph.adjacency.astype(bool)).nnz == 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_csr_decode_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        n, f = int(rng.integers(1, 50)), int(rng.integers(1, 40))
        vals, bits = random_quantized_matrix(rng, n, f,
                                             density=float(rng.uniform(0, 0.7)))
        encoded = CsrFormat().encode(vals, bits)
        np.testing.assert_array_equal(CsrFormat().decode(encoded),
                                      csr_decode_reference(encoded))
        np.testing.assert_array_equal(CsrFormat().decode(encoded), vals)


class TestSparseUtils:
    def test_coo_view_memoizes_per_object(self):
        adj = sp.random(50, 50, density=0.1, format="csr", random_state=0)
        assert coo_view(adj) is coo_view(adj)

    def test_coo_view_invalidated_by_nnz_change(self):
        adj = sp.random(20, 20, density=0.1, format="csr", random_state=0)
        parts = np.arange(20) % 3
        cross_edge_mask(adj, parts)  # populate the cache
        with pytest.warns(sp.SparseEfficiencyWarning):
            adj[2, 3] = 1.0  # in-place insert: same object, new structure
        mask = cross_edge_mask(adj, parts)
        assert len(mask) == adj.nnz  # stale cached view would be shorter
        expected = parts[adj.tocoo().row] != parts[adj.tocoo().col]
        np.testing.assert_array_equal(mask, expected)

    def test_cross_edge_mask_matches_inline_pattern(self):
        graph, parts = random_partitioned_graph(5)
        coo = graph.adjacency.tocoo()
        expected = parts[coo.row] != parts[coo.col]
        np.testing.assert_array_equal(cross_edge_mask(graph.adjacency, parts),
                                      expected)

    def test_graph_scalar_caches(self):
        graph = synthetic_graph(100, 500, 8, 4, seed=0)
        assert graph.num_classes == graph.num_classes
        assert "num_classes" in graph._cache
        density = graph.feature_density()
        assert "feature_density" in graph._cache
        assert graph.feature_density() == density


class TestPerfCache:
    def test_cached_partition_identity_and_stats(self):
        clear_all_caches()
        graph = synthetic_graph(150, 700, 8, 4, seed=0)
        first = cached_partition(graph.adjacency, 4)
        second = cached_partition(graph.adjacency, 4)
        assert first is second
        stats = cache_stats()["partition"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_cached_partition_matches_uncached(self):
        clear_all_caches()
        graph = synthetic_graph(150, 700, 8, 4, seed=1)
        cached = cached_partition(graph.adjacency, 4, seed=0)
        direct = partition_graph(graph.adjacency, 4, seed=0)
        np.testing.assert_array_equal(cached.parts, direct.parts)
        assert cached.edge_cut == direct.edge_cut

    def test_fingerprint_distinguishes_content(self):
        a = sp.identity(20, format="csr")
        b = sp.identity(21, format="csr")
        c = sp.identity(20, format="csr")
        assert graph_fingerprint(a) != graph_fingerprint(b)
        assert graph_fingerprint(a) == graph_fingerprint(c)
        assert graph_fingerprint(a) == graph_fingerprint(a)  # memo path

    def test_distinct_params_get_distinct_entries(self):
        clear_all_caches()
        graph = synthetic_graph(120, 500, 8, 4, seed=2)
        cached_partition(graph.adjacency, 2)
        cached_partition(graph.adjacency, 3)
        assert len(PARTITION_CACHE) == 2

    def test_cached_load_dataset_returns_same_object(self):
        clear_all_caches()
        assert cached_load_dataset("cora", scale="tiny") is \
            cached_load_dataset("cora", scale="tiny")


class TestTimersAndBench:
    def test_timer_measures_positive_elapsed(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed > 0

    def test_time_callable_counts_repeats(self):
        stats = time_callable(lambda: None, repeats=4, warmup=0)
        assert stats.as_dict()["repeats"] == 4
        assert stats.best_s <= stats.mean_s

    def test_bench_tiny_produces_valid_report(self, tmp_path):
        report = run_benchmarks(sizes=["tiny"], repeats=1, check=True)
        required = {"adaptive_package_encode", "condense_run",
                    "sample_neighbors", "csr_decode", "partition_graph"}
        assert required <= set(report["kernels"])
        for kernel in required:
            row = report["kernels"][kernel]["tiny"]
            assert row["speedup"] > 0
        # the report round-trips through JSON
        sweep = report["full_sweep"]
        assert sweep["executed_warm_jobs"] == 0
        assert sweep["executed_cold_jobs"] == sweep["jobs"]
        assert sweep["warm_speedup"] > 1.0
        acc = report["accuracy_sweep"]
        assert acc["executed_warm_train_jobs"] == 0
        assert acc["executed_cold_train_jobs"] == acc["jobs"]
        assert acc["warm_speedup"] > 1.0
        scale = report["scale_sweep"]
        assert scale["executed_warm_jobs"] == 0
        assert scale["executed_cold_jobs"] == scale["jobs"]
        assert scale["warm_speedup"] > 1.0
        assert report["train_epoch"]["bit_identical"]
        art = report["artifact_store"]
        assert art["puts_per_s"] > 0 and art["gets_per_s"] > 0
        assert art["verifies_per_s"] > 0
        assert art["replay"]["executed_warm_jobs"] == 0
        assert art["replay"]["executed_cold_jobs"] == art["replay"]["jobs"]
        batched = report["batched_sweep"]
        assert batched["identical"] is True
        assert batched["executed_warm_jobs"] == 0
        assert batched["executed_cold_jobs"] == batched["jobs"]
        fleet = report["fleet_replay"]
        assert fleet["executed_warm_jobs"] == 0
        assert fleet["executed_cold_jobs"] == fleet["jobs"]
        assert fleet["identical"] is True
        assert fleet["chaos"]["quarantined"] == 0
        assert fleet["drain_exit_code"] == 0
        path = tmp_path / "BENCH_repro.json"
        path.write_text(json.dumps(report))
        round_trip = json.loads(path.read_text())
        assert round_trip["schema"] == "repro.perf.bench/v8"
        assert round_trip["schema_version"] == round_trip["schema"]

    def test_bench_rejects_unknown_size(self):
        with pytest.raises(ValueError):
            run_benchmarks(sizes=["galactic"])

    def test_bench_sizes_cover_acceptance_scale(self):
        nodes, edges, _, _ = BENCH_SIZES["large"]
        assert nodes >= 50_000 and edges >= 500_000
