"""ExperimentSpec/Artifact layer: shim bit-identity, old-vs-new
comparison against hand-rolled engine sweeps, and artifact schema."""

import json

import numpy as np
import pytest

from repro.eval import experiments as exp
from repro.eval.engine import SimJob
from repro.eval.reporting import geomean
from repro.report import (ARTIFACT_SCHEMA, Artifact, ArtifactError,
                          run_experiment, run_suite_experiment,
                          tabulate_value, validate_artifact_dict)

WORKLOADS = (("cora", "gcn"), ("citeseer", "gcn"))
DATASETS = ("cora", "citeseer")


class TestShimsBitIdentical:
    """Each legacy runner returns exactly its spec counterpart's value."""

    def test_full_comparison(self, sweep_engine):
        legacy = exp.full_comparison(WORKLOADS, ("hygcn", "mega"))
        spec = run_experiment("full_comparison", workloads=WORKLOADS,
                              accelerators=("hygcn", "mega")).value
        assert legacy == spec

    def test_speedup_table(self, sweep_engine):
        legacy = exp.speedup_table(WORKLOADS, ("hygcn", "gcnax"))
        spec = run_experiment("speedup_table", workloads=WORKLOADS,
                              accelerators=("hygcn", "gcnax")).value
        assert legacy == spec

    def test_dram_and_energy_tables(self, sweep_engine):
        assert exp.dram_table(WORKLOADS, ("hygcn",)) == run_experiment(
            "dram_table", workloads=WORKLOADS, accelerators=("hygcn",)).value
        assert exp.energy_table(WORKLOADS, ("hygcn",)) == run_experiment(
            "energy_table", workloads=WORKLOADS, accelerators=("hygcn",)).value

    def test_stall_table(self, sweep_engine):
        legacy = exp.stall_table(datasets=DATASETS)
        spec = run_experiment("stall_table", datasets=DATASETS).value
        assert legacy == spec

    def test_ablation_fig19(self, sweep_engine):
        legacy = exp.ablation_fig19("cora", "gcn")
        spec = run_experiment("ablation_fig19").value
        assert list(legacy) == list(spec)
        assert all(legacy[k].total_cycles == spec[k].total_cycles
                   for k in legacy)

    def test_locality_study(self, sweep_engine):
        legacy = exp.locality_study(strategies=("naive", "condense"))
        spec = run_experiment("locality_study",
                              strategies=("naive", "condense")).value
        assert legacy == spec

    def test_package_length_study(self, sweep_engine):
        settings = ((16, 24, 32), (64, 128, 192))
        legacy = exp.package_length_study(datasets=("cora",),
                                          settings=settings)
        spec = run_experiment("package_length_study", datasets=("cora",),
                              settings=settings).value
        assert legacy == spec

    def test_cr_sensitivity(self, sweep_engine):
        legacy = exp.cr_sensitivity(models=("gcn",), targets=(8.0, 4.3))
        spec = run_experiment("cr_sensitivity", models=("gcn",),
                              targets=(8.0, 4.3)).value
        assert legacy == spec

    def test_original_config_comparison(self, sweep_engine):
        legacy = exp.original_config_comparison(datasets=DATASETS)
        spec = run_experiment("original_config_comparison",
                              datasets=DATASETS).value
        assert legacy == spec

    def test_energy_breakdown(self, sweep_engine):
        legacy = exp.energy_breakdown_fig18(datasets=("cora",))
        spec = run_experiment("energy_breakdown_fig18",
                              datasets=("cora",)).value
        assert legacy == spec

    def test_accuracy_shims(self, sweep_engine):
        from repro.eval.accuracy import (accuracy_comparison,
                                         dq_bitwidth_sweep)
        from repro.nn import TrainConfig

        tiny = TrainConfig(epochs=3, patience=100)
        cases = (("cora", "gcn"),)
        legacy = accuracy_comparison(cases=cases, config=tiny)
        spec = run_experiment("accuracy_comparison", cases=cases,
                              config=tiny).value
        assert legacy == spec

        legacy = dq_bitwidth_sweep(dataset="cora", model="gcn",
                                   bitwidths=(4,), config=tiny)
        spec = run_experiment("dq_bitwidth_sweep", dataset="cora",
                              model="gcn", bitwidths=(4,),
                              config=tiny).value
        assert legacy == spec


class TestOldVsNew:
    """Spec-path values match hand-rolled pre-refactor computations."""

    def test_speedup_table_matches_manual_sweep(self, sweep_engine):
        accelerators = ("hygcn", "gcnax")
        jobs = {(ds, m, name): SimJob.from_call(name, ds, m)
                for ds, m in WORKLOADS
                for name in accelerators + ("mega",)}
        reports = sweep_engine.run(list(jobs.values()))
        manual = {}
        for ds, m in WORKLOADS:
            mega = reports[jobs[(ds, m, "mega")]]
            manual[f"{ds}-{m}"] = {
                name: reports[jobs[(ds, m, name)]].total_cycles
                / mega.total_cycles
                for name in accelerators}
        manual["geomean"] = {
            name: geomean(row[name] for key, row in manual.items()
                          if key != "geomean")
            for name in accelerators}

        table = exp.speedup_table(WORKLOADS, accelerators)
        assert table == manual

    def test_stall_table_matches_manual_sweep(self, sweep_engine):
        jobs = {(ds, name): SimJob.from_call(name, ds, "gcn")
                for ds in DATASETS for name in ("hygcn", "gcnax", "mega")}
        reports = sweep_engine.run(list(jobs.values()))
        manual = {ds: {name: reports[jobs[(ds, name)]].stall_fraction
                       for name in ("hygcn", "gcnax", "mega")}
                  for ds in DATASETS}
        assert exp.stall_table(datasets=DATASETS) == manual

    def test_ablation_matches_direct_models(self, sweep_engine):
        """The registered ablation entries equal hand-built MegaModels."""
        from repro.mega import MegaModel

        table = exp.ablation_fig19("cora", "gcn")
        workload = exp.get_workload("cora", "gcn", "degree-aware")
        direct_bitmap = MegaModel(storage="bitmap",
                                  condense=False).simulate(workload)
        direct_full = MegaModel().simulate(workload)
        assert table["quant+bitmap"].total_cycles == direct_bitmap.total_cycles
        assert table["+condense-edge"].total_cycles == direct_full.total_cycles


class TestArtifact:
    def test_metadata_records_execution(self, sweep_engine):
        artifact = run_experiment("stall_table", datasets=("cora",))
        jobs = artifact.metadata["jobs"]
        assert jobs["unique"] == 3 and jobs["executed"] == 3
        assert jobs["trained"] == 0
        assert artifact.metadata["source_digest"]
        # Warm rerun executes nothing.
        warm = run_experiment("stall_table", datasets=("cora",))
        assert warm.metadata["jobs"]["executed"] == 0
        assert warm.value == artifact.value

    def test_json_roundtrip_through_schema(self, sweep_engine):
        artifact = run_experiment("speedup_table", workloads=WORKLOADS,
                                  accelerators=("hygcn",))
        data = json.loads(artifact.to_json())
        validate_artifact_dict(data)
        assert data["schema"] == ARTIFACT_SCHEMA
        restored = Artifact.from_json(artifact.to_json())
        assert restored.experiment == artifact.experiment
        assert restored.columns == artifact.columns
        assert restored.rows == artifact.rows
        assert restored.metadata == artifact.metadata

    def test_rows_are_json_primitive(self, sweep_engine):
        for name, params in (
            ("full_comparison", dict(workloads=(("cora", "gcn"),),
                                     accelerators=("hygcn", "mega"))),
            ("cr_sensitivity", dict(models=("gcn",), targets=(8.0,))),
            ("energy_breakdown_fig18", dict(datasets=("cora",))),
        ):
            artifact = run_experiment(name, **params)
            validate_artifact_dict(artifact.to_dict())

    def test_save_and_render(self, sweep_engine, tmp_path):
        artifact = run_experiment("stall_table", datasets=("cora",))
        paths = artifact.save(tmp_path, formats=("json", "csv", "md"))
        assert len(paths) == 3
        validate_artifact_dict(json.loads(
            (tmp_path / "stall_table.json").read_text()))
        csv_text = (tmp_path / "stall_table.csv").read_text()
        assert csv_text.splitlines()[0].startswith("row,")
        md = (tmp_path / "stall_table.md").read_text()
        assert md.startswith("| row |")
        with pytest.raises(ValueError):
            artifact.save(tmp_path, formats=("xml",))

    def test_validate_rejects_bad_artifacts(self):
        good = {"schema": ARTIFACT_SCHEMA, "experiment": "x",
                "columns": ["row", "a"], "rows": [{"row": "r", "a": 1.0}],
                "metadata": {}}
        validate_artifact_dict(good)
        for mutate in (
            lambda d: d.update(schema="other/v9"),
            lambda d: d.update(experiment=""),
            lambda d: d.update(columns=[]),
            lambda d: d.update(rows=[{"row": "r", "zzz": 1.0}]),
            lambda d: d.update(rows=[{"row": object()}]),
            lambda d: d.update(metadata=None),
        ):
            bad = {k: (v.copy() if hasattr(v, "copy") else v)
                   for k, v in good.items()}
            mutate(bad)
            with pytest.raises(ArtifactError):
                validate_artifact_dict(bad)

    def test_tabulate_nested_shapes(self):
        two_level = {"r1": {"a": 1.0, "b": 2.0}, "r2": {"a": 3.0}}
        table = tabulate_value(two_level)
        assert table["columns"] == ["row", "a", "b"]
        assert table["rows"][0] == {"row": "r1", "a": 1.0, "b": 2.0}

        three_level = {"case": {"flow": {"acc": 0.5}}}
        table = tabulate_value(three_level)
        assert table["rows"] == [{"row": "case/flow", "acc": 0.5}]

        tuple_keys = {("cora", "gcn"): {"hygcn": 1.5}}
        table = tabulate_value(tuple_keys)
        assert table["rows"][0]["row"] == "cora-gcn"

        arrays = {"gcn": np.arange(3, dtype=np.float64)}
        table = tabulate_value(arrays)
        assert table["rows"][0]["gcn"] == [0.0, 1.0, 2.0]

    def test_run_suite_experiment_binds_suite(self, sweep_engine):
        artifact = run_suite_experiment("stall_table", "smoke")
        assert [r["row"] for r in artifact.rows] == ["cora", "citeseer"]
        with pytest.raises(Exception, match="not suite-parameterized"):
            run_suite_experiment("ablation_fig19", "smoke")


class TestDegradedArtifacts:
    """Partial-result artifacts: the errors schema and fail-fast mode."""

    def test_degrade_records_structured_errors(self, sweep_engine):
        from repro.faults import inject_faults

        with inject_faults(raise_=1.0):
            artifact = run_experiment("stall_table", datasets=("cora",),
                                      fail_fast=False)
        jobs = artifact.metadata["jobs"]
        assert jobs["failed"] > 0 and jobs["executed"] == 0
        assert artifact.value is None  # reducer cannot digest zero rows
        errors = artifact.metadata["errors"]
        assert len(errors) == jobs["failed"]
        for error in errors:
            assert set(error) == {"job", "fingerprint", "error_type",
                                  "error", "attempts", "elapsed_s", "kind"}
            assert error["error_type"] == "InjectedFault"
            assert error["attempts"] == 1
        # Degraded artifacts still serialize through the schema.
        validate_artifact_dict(artifact.to_dict())

    def test_partial_failure_keeps_successful_rows(self, sweep_engine):
        from repro.faults import FaultPlan, inject_faults

        datasets = ("cora", "citeseer")
        # A seed whose victims are a strict subset of the stall_table jobs.
        from repro.registry import get_experiment

        spec = get_experiment("stall_table")
        jobs = spec.build_jobs(
            **spec.params_with_defaults({"datasets": datasets}))
        for seed in range(64):
            plan = FaultPlan(rates=(("raise", 0.5),), seed=seed)
            doomed = [j for j in jobs.values()
                      if plan.decide("raise", repr(j))]
            if 0 < len(doomed) < len(jobs):
                break
        with inject_faults(raise_=0.5, seed=seed):
            artifact = run_experiment("stall_table", datasets=datasets,
                                      fail_fast=False)
        assert artifact.metadata["jobs"]["failed"] == len(doomed)
        assert artifact.rows  # the surviving jobs still tabulate
        validate_artifact_dict(artifact.to_dict())

    def test_fail_fast_true_reraises(self, sweep_engine):
        from repro.faults import InjectedFault, inject_faults

        with inject_faults(raise_=1.0):
            with pytest.raises(InjectedFault):
                run_experiment("stall_table", datasets=("cora",),
                               fail_fast=True)

    def test_fail_fast_default_from_env(self, sweep_engine, monkeypatch):
        from repro.faults import InjectedFault, inject_faults

        monkeypatch.setenv("REPRO_FAIL_FAST", "1")
        with inject_faults(raise_=1.0):
            with pytest.raises(InjectedFault):
                run_experiment("stall_table", datasets=("cora",))

    def test_library_default_is_fail_fast(self, sweep_engine, monkeypatch):
        """Without fail_fast or REPRO_FAIL_FAST, run_experiment raises —
        the legacy runner semantics; degrade is opt-in (the CLI passes
        fail_fast=False explicitly)."""
        from repro.faults import InjectedFault, inject_faults

        monkeypatch.delenv("REPRO_FAIL_FAST", raising=False)
        with inject_faults(raise_=1.0):
            with pytest.raises(InjectedFault):
                run_experiment("stall_table", datasets=("cora",))

    def test_env_can_opt_into_degrade(self, sweep_engine, monkeypatch):
        from repro.faults import inject_faults

        monkeypatch.setenv("REPRO_FAIL_FAST", "0")
        with inject_faults(raise_=1.0):
            artifact = run_experiment("stall_table", datasets=("cora",))
        assert artifact.metadata["jobs"]["failed"] > 0

    def test_clean_run_has_no_errors_section(self, sweep_engine):
        artifact = run_experiment("stall_table", datasets=("cora",))
        assert "errors" not in artifact.metadata
        assert artifact.metadata["jobs"]["failed"] == 0
        assert "corrupt_drops" in artifact.metadata["cache"]
