"""Tests for the graph container, generators, datasets and statistics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import (
    DATASETS,
    Graph,
    load_dataset,
    paper_stats,
    power_law_degrees,
    sim_feature_stats,
    synthetic_graph,
)
from repro.graphs.generators import community_graph, sparse_features, split_masks
from repro.graphs.statistics import (
    DEGREE_GROUPS,
    average_feature_by_degree,
    degree_group_histogram,
    degree_group_index,
    density,
    power_law_fit,
)


@pytest.fixture(scope="module")
def tiny_graph():
    return load_dataset("cora", scale="tiny")


class TestGraphContainer:
    def test_basic_shapes(self, tiny_graph):
        g = tiny_graph
        assert g.adjacency.shape == (g.num_nodes, g.num_nodes)
        assert g.features.shape[0] == g.num_nodes
        assert len(g.labels) == g.num_nodes

    def test_degrees_match_nnz(self, tiny_graph):
        g = tiny_graph
        assert g.in_degrees.sum() == g.num_edges
        assert g.out_degrees.sum() == g.num_edges

    def test_gcn_normalization_symmetric(self, tiny_graph):
        a = tiny_graph.normalized_adjacency("gcn")
        # D^-1/2 (A+I) D^-1/2 is symmetric when A is symmetrized; ours is
        # directed so we only check the diagonal self-loops exist.
        assert (a.diagonal() > 0).all()

    def test_mean_normalization_rows_sum_to_one(self, tiny_graph):
        a = tiny_graph.normalized_adjacency("mean")
        sums = np.asarray(a.sum(axis=1)).reshape(-1)
        nonzero = sums > 0
        np.testing.assert_allclose(sums[nonzero], 1.0, atol=1e-5)

    def test_add_normalization_includes_self_loop(self, tiny_graph):
        a = tiny_graph.normalized_adjacency("add")
        assert (a.diagonal() == 1).all()

    def test_unknown_normalization_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.normalized_adjacency("bogus")

    def test_norm_cache_returns_same_object(self, tiny_graph):
        assert tiny_graph.normalized_adjacency("gcn") is \
            tiny_graph.normalized_adjacency("gcn")

    def test_subgraph_remaps(self, tiny_graph):
        nodes = np.arange(10)
        sub = tiny_graph.subgraph(nodes)
        assert sub.num_nodes == 10
        assert sub.features.shape == (10, tiny_graph.feature_dim)

    def test_sample_neighbors_caps_degree(self, tiny_graph):
        sampled = tiny_graph.sample_neighbors(2)
        assert sampled.in_degrees.max() <= 2
        assert sampled.num_nodes == tiny_graph.num_nodes

    def test_edge_list_matches_adjacency(self, tiny_graph):
        dst, src = tiny_graph.edge_list()
        assert len(dst) == tiny_graph.num_edges
        rebuilt = sp.csr_matrix(
            (np.ones(len(dst)), (dst, src)),
            shape=tiny_graph.adjacency.shape)
        assert (rebuilt != tiny_graph.adjacency.astype(bool)).nnz == 0

    def test_summary_fields(self, tiny_graph):
        s = tiny_graph.summary()
        assert set(s) == {"nodes", "edges", "feature_length",
                          "average_degree", "feature_density"}

    def test_mismatched_features_raise(self):
        with pytest.raises(ValueError):
            Graph(sp.identity(3, format="csr"), np.zeros((2, 4)), np.zeros(3))

    def test_nonsquare_adjacency_raises(self):
        with pytest.raises(ValueError):
            Graph(sp.csr_matrix(np.ones((2, 3))), np.zeros((2, 4)), np.zeros(2))


class TestGenerators:
    def test_power_law_mean_close_to_target(self):
        deg = power_law_degrees(5000, 4.0, rng=np.random.default_rng(0))
        assert deg.mean() == pytest.approx(4.0, rel=0.3)
        assert deg.min() >= 1

    def test_power_law_has_heavy_tail(self):
        deg = power_law_degrees(5000, 4.0, rng=np.random.default_rng(0))
        assert deg.max() > 10 * deg.mean()

    def test_community_graph_homophily(self):
        adj, comm = community_graph(600, 3000, 4, homophily=0.9,
                                    rng=np.random.default_rng(0))
        coo = adj.tocoo()
        same = (comm[coo.row] == comm[coo.col]).mean()
        assert same > 0.6

    def test_community_graph_no_self_loops(self):
        adj, _ = community_graph(200, 800, 3, rng=np.random.default_rng(1))
        assert adj.diagonal().sum() == 0

    def test_sparse_features_density(self):
        comm = np.sort(np.random.default_rng(0).integers(0, 4, 500))
        feats = sparse_features(comm, 256, 0.05, 4, row_normalize=False,
                                rng=np.random.default_rng(0))
        d = np.count_nonzero(feats) / feats.size
        assert 0.02 < d < 0.12

    def test_row_normalized_rows_sum_to_one(self):
        comm = np.zeros(50, dtype=int)
        feats = sparse_features(comm, 64, 0.1, 1, row_normalize=True,
                                rng=np.random.default_rng(0))
        sums = feats.sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0, atol=1e-5)

    def test_split_masks_disjoint_and_complete(self):
        train, val, test = split_masks(100, rng=np.random.default_rng(0))
        assert not (train & val).any()
        assert not (train & test).any()
        assert (train | val | test).all()

    def test_synthetic_graph_deterministic(self):
        g1 = synthetic_graph(100, 400, 32, 3, seed=7)
        g2 = synthetic_graph(100, 400, 32, 3, seed=7)
        np.testing.assert_array_equal(g1.features, g2.features)
        assert (g1.adjacency != g2.adjacency).nnz == 0

    def test_label_noise_flips_some(self):
        g_clean = synthetic_graph(300, 900, 32, 3, label_noise=0.0, seed=1)
        g_noisy = synthetic_graph(300, 900, 32, 3, label_noise=0.3, seed=1)
        assert (g_clean.labels != g_noisy.labels).mean() > 0.05


class TestDatasets:
    def test_registry_has_all_five(self):
        assert set(DATASETS) == {"cora", "citeseer", "pubmed", "nell", "reddit"}

    def test_paper_stats_table2(self):
        stats = paper_stats("reddit")
        assert stats.nodes == 232965
        assert stats.edges == 114615892
        assert stats.feature_dim == 602

    def test_train_scale_sizes(self):
        g = load_dataset("cora")
        assert g.num_nodes == 2708
        assert g.feature_dim == 1433

    def test_tiny_scale_is_small(self):
        g = load_dataset("pubmed", scale="tiny")
        assert g.num_nodes == 256

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            load_dataset("cora", scale="huge")

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_sim_feature_stats_nell_is_paper_width(self):
        dim, nnz = sim_feature_stats("nell")
        assert dim == 61278
        assert nnz.min() >= 1
        assert nnz.max() <= dim


class TestStatistics:
    def test_degree_group_index_buckets(self):
        idx = degree_group_index(np.array([1, 10, 11, 35, 200]))
        assert idx.tolist() == [0, 0, 1, 3, 4]

    def test_histogram_sums_to_one(self, tiny_graph):
        hist = degree_group_histogram(tiny_graph)
        assert hist.sum() == pytest.approx(1.0)
        assert len(hist) == len(DEGREE_GROUPS)

    def test_power_law_majority_low_degree(self):
        g = load_dataset("cora")
        hist = degree_group_histogram(g)
        assert hist[0] > 0.5  # low in-degree group dominates

    def test_average_feature_by_degree_monotone_for_add(self):
        """Fig. 3's observation: add-aggregated magnitude grows with
        in-degree."""
        g = load_dataset("cora")
        agg = g.normalized_adjacency("add") @ g.features
        magnitudes = average_feature_by_degree(g, agg)
        present = magnitudes[magnitudes > 0]
        assert present[-1] > present[0]

    def test_density(self):
        assert density(np.array([[1.0, 0.0], [0.0, 0.0]])) == 0.25

    def test_power_law_fit_range(self):
        deg = power_law_degrees(3000, 4.0, exponent=2.2,
                                rng=np.random.default_rng(0))
        fit = power_law_fit(deg)
        assert 1.3 < fit["alpha"] < 4.0
