"""Verified remote artifact fetch (:mod:`repro.remote`).

Covers the distrust-everything contract end to end against a live
in-process ``repro serve``: round-trip fetch-and-publish, Range resume
of cut-short transfers, rejection (never publication) of corrupt,
truncated, and tampered bodies, convergence under every injected
``net_*`` kind, structured failure records that degrade to local
execution, and the engine's memory → disk → remote → execute
resolution order.
"""

import json

import pytest

from repro.artifacts import ArtifactStore
from repro.eval.engine import temporary_cache_dir
from repro.faults import inject_faults
from repro.remote import RemoteStore, remote_store_from_env
from repro.serve import ServeConfig, ServerThread

PRODUCER = "remote-test"


@pytest.fixture
def served(tmp_path):
    """A warm artifact store behind a live server; yields
    ``(handle, server_store, ids)``."""
    with temporary_cache_dir(tmp_path / "server-cache"):
        store = ArtifactStore(directory=tmp_path / "server-cache")
        ids = [store.put("demo", {"n": i},
                         {"value": i, "pad": "x" * 600}, producer=PRODUCER)
               for i in range(4)]
        with ServerThread(ServeConfig(port=0, quiet=True)) as handle:
            yield handle, store, ids


def _fetcher(handle, tmp_path, **kwargs):
    local = ArtifactStore(directory=tmp_path / "worker-cache")
    kwargs.setdefault("backoff", 0.01)
    return RemoteStore(url=handle.url, store=local, **kwargs), local


class TestFetch:
    def test_round_trip_publishes_into_the_local_store(self, served,
                                                       tmp_path):
        handle, server_store, ids = served
        remote, local = _fetcher(handle, tmp_path)
        value = remote.fetch(ids[0])
        assert value == {"value": 0, "pad": "x" * 600}
        # The verified download published through the staged protocol:
        # same id, same bytes, locally servable without the network.
        assert ids[0] in local
        assert local.get(ids[0]) == value
        assert (local.payload_path(ids[0]).read_bytes()
                == server_store.payload_path(ids[0]).read_bytes())
        assert local.verify()["ok"] == 1
        stats = remote.stats()
        assert stats["hits"] == 1 and stats["rejected"] == 0

    def test_unknown_id_is_a_miss_not_a_failure(self, served, tmp_path):
        handle, _, _ = served
        remote, _ = _fetcher(handle, tmp_path)
        assert remote.fetch("art_" + "0" * 16, "fallback") == "fallback"
        assert remote.misses == 1
        assert remote.failures == []  # a 404 is an answer, not an error

    def test_invalid_id_short_circuits(self, served, tmp_path):
        handle, _, _ = served
        remote, _ = _fetcher(handle, tmp_path)
        assert remote.fetch("not-an-id") is None
        assert remote.misses == 1 and remote.fetches == 1

    def test_unreachable_server_degrades_with_a_structured_failure(
            self, tmp_path):
        remote = RemoteStore(url="127.0.0.1:1",  # nothing listens here
                             store=ArtifactStore(directory=tmp_path / "w"),
                             retries=1, backoff=0.01, timeout=2.0)
        assert remote.fetch("art_" + "a" * 16, "fallback") == "fallback"
        assert len(remote.failures) == 1
        record = remote.failures[0].to_dict()
        assert record["id"] == "art_" + "a" * 16
        assert record["attempts"] == 2
        assert remote.stats()["failures"] == 1

    def test_index_negotiates_the_delta(self, served, tmp_path):
        handle, _, ids = served
        remote, _ = _fetcher(handle, tmp_path)
        assert sorted(remote.index()) == sorted(ids)
        assert remote.index(have=ids) == []
        delta = remote.index(have=ids[:2])
        assert sorted(delta) == sorted(ids[2:])


class TestHostileNetwork:
    """Every injected damage kind is rejected before publish and the
    bounded retry converges on the true bytes."""

    @pytest.mark.parametrize("spec", ["net_corrupt=1.0", "net_truncate=1.0",
                                      "net_503=1.0", "net_stall=1.0"])
    def test_every_net_kind_converges(self, served, tmp_path, spec):
        handle, server_store, ids = served
        with inject_faults(spec, seed=7):
            remote, local = _fetcher(handle, tmp_path)
            for i, art_id in enumerate(ids):
                assert remote.fetch(art_id) == {"value": i,
                                                "pad": "x" * 600}
        # Zero corrupt payloads were ever published locally.
        report = local.verify()
        assert report["ok"] == 4 and report["quarantined"] == []
        assert remote.hits == 4 and remote.failures == []

    def test_server_truncation_resumes_via_range(self, served, tmp_path):
        handle, _, ids = served
        # Server-side truncation only (the recv| client tokens decide
        # independently, so pick a seed where they stay quiet — rate
        # applies per token, and net_truncate fires on the net| side
        # for every id at rate 1.0 regardless).
        with inject_faults("net_truncate=1.0", seed=7):
            remote, local = _fetcher(handle, tmp_path)
            values = [remote.fetch(i) for i in ids]
        assert all(v is not None for v in values)
        assert remote.resumed > 0  # IncompleteRead → Range continuation
        assert local.verify()["quarantined"] == []

    def test_corruption_is_rejected_and_counted(self, served, tmp_path):
        handle, _, ids = served
        with inject_faults("net_corrupt=1.0", seed=7):
            remote, local = _fetcher(handle, tmp_path)
            assert remote.fetch(ids[0]) is not None
        assert remote.rejected > 0
        assert remote.retries_used > 0
        assert local.verify()["quarantined"] == []

    def test_mixed_chaos_converges(self, served, tmp_path):
        handle, _, ids = served
        spec = "net_truncate=0.4,net_corrupt=0.4,net_503=0.3,net_stall=0.2"
        with inject_faults(spec, seed=11):
            remote, local = _fetcher(handle, tmp_path)
            for i, art_id in enumerate(ids):
                assert remote.fetch(art_id) == {"value": i,
                                                "pad": "x" * 600}
        assert remote.failures == []
        assert local.verify()["quarantined"] == []

    def test_tampered_manifest_never_publishes(self, served, tmp_path):
        """A manifest whose id does not re-derive is rejected on every
        attempt — the fetch degrades instead of trusting the server."""
        handle, server_store, ids = served
        victim = ids[0]
        mpath = server_store.manifest_path(victim)
        manifest = json.loads(mpath.read_bytes())
        manifest["inputs"] = {"n": 999}  # self-consistent hash, wrong id
        mpath.write_text(json.dumps(manifest, sort_keys=True))

        remote, local = _fetcher(handle, tmp_path, retries=1)
        assert remote.fetch(victim, "fallback") == "fallback"
        assert remote.rejected == 2  # every attempt rejected
        assert len(remote.failures) == 1
        assert remote.failures[0].error_type == "ArtifactIntegrityError"
        assert "re-derive" in remote.failures[0].error
        assert victim not in local  # never published


class TestEngineReadThrough:
    def test_fresh_engine_resolves_through_the_remote_tier(self, tmp_path,
                                                           monkeypatch):
        from repro.eval.engine import SimJob, SweepEngine

        jobs = [SimJob.from_call("gcnax", "cora", "gcn")]
        with temporary_cache_dir(tmp_path / "server-cache"):
            warm = SweepEngine(workers=0,
                               cache_dir=tmp_path / "server-cache")
            local_rows = warm.run(jobs)
            assert warm.executed_jobs == 1
            with ServerThread(ServeConfig(port=0, quiet=True)) as handle:
                monkeypatch.setenv("REPRO_REMOTE_URL", handle.url)
                monkeypatch.setenv("REPRO_REMOTE_BACKOFF", "0.01")
                with inject_faults("net_corrupt=0.5,net_503=0.3", seed=5):
                    worker = SweepEngine(
                        workers=0, cache_dir=tmp_path / "worker-cache")
                    assert worker.remote is not None  # wired from env
                    rows = worker.run(jobs)
        assert worker.executed_jobs == 0  # replayed, never re-executed
        import pickle

        assert pickle.dumps(rows[jobs[0]]) == pickle.dumps(
            local_rows[jobs[0]])  # bit-identical to local execution
        stats = worker.stats()
        assert stats["remote"]["hits"] == 1
        assert set(worker.consumed_artifacts.values()) == {"sim-report"}
        # Second run answers from memory: no further remote traffic.
        fetches = worker.remote.fetches
        worker.run(jobs)
        assert worker.remote.fetches == fetches

    def test_unreachable_remote_degrades_to_execution(self, tmp_path,
                                                      monkeypatch):
        from repro.eval.engine import SimJob, SweepEngine

        monkeypatch.setenv("REPRO_REMOTE_URL", "127.0.0.1:1")
        monkeypatch.setenv("REPRO_REMOTE_RETRIES", "0")
        monkeypatch.setenv("REPRO_REMOTE_BACKOFF", "0.01")
        monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "2")
        with temporary_cache_dir(tmp_path / "cache"):
            engine = SweepEngine(workers=0, cache_dir=tmp_path / "cache")
            jobs = [SimJob.from_call("gcnax", "cora", "gcn")]
            rows = engine.run(jobs)
        assert engine.executed_jobs == 1  # never a hung sweep
        assert rows[jobs[0]] is not None
        assert engine.stats()["remote"]["failures"] == 1

    def test_no_env_means_no_remote_tier(self, tmp_path, monkeypatch):
        from repro.eval.engine import SweepEngine

        monkeypatch.delenv("REPRO_REMOTE_URL", raising=False)
        engine = SweepEngine(workers=0, cache_dir=tmp_path / "cache")
        assert engine.remote is None
        assert "remote" not in engine.stats()
        assert remote_store_from_env() is None
