"""The durable content-addressed artifact store (:mod:`repro.artifacts`).

Covers the full robustness contract: id derivation, the crash-safe
write protocol (including SIGKILLed writers at injected points and
lock-free same-id races), verification and quarantine-then-rebuild,
GC liveness from journals and pins, verified export/import with
tamper rejection, fault-injection hooks, and the DiskCache spill
integration.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.artifacts import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactStore,
    artifact_store,
    canonical_inputs,
    derive_artifact_id,
)
from repro.eval.engine import temporary_cache_dir
from repro.faults import inject_faults

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="needs fork workers")

PRODUCER = "test-producer"


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(directory=tmp_path / "cache")


def _put_demo(store, n=1, kind="demo"):
    """Publish n distinct entries; returns their ids."""
    return [store.put(kind, {"n": i}, {"value": i}, producer=PRODUCER)
            for i in range(n)]


class TestDeriveId:
    def test_deterministic_and_well_formed(self):
        a = derive_artifact_id("sim-report", {"fp": "abc"}, producer="p1")
        b = derive_artifact_id("sim-report", {"fp": "abc"}, producer="p1")
        assert a == b
        assert a.startswith("art_") and len(a) == 4 + 16
        assert all(c in "0123456789abcdef" for c in a[4:])

    def test_key_order_is_canonical(self):
        a = derive_artifact_id("k", {"x": 1, "y": 2}, producer="p")
        b = derive_artifact_id("k", {"y": 2, "x": 1}, producer="p")
        assert a == b

    def test_tuple_and_list_inputs_collide_by_design(self):
        a = derive_artifact_id("k", {"shape": (2, 3)}, producer="p")
        b = derive_artifact_id("k", {"shape": [2, 3]}, producer="p")
        assert a == b

    def test_numpy_scalars_coerce(self):
        np = pytest.importorskip("numpy")
        a = derive_artifact_id("k", {"seed": np.int64(7)}, producer="p")
        b = derive_artifact_id("k", {"seed": 7}, producer="p")
        assert a == b

    @pytest.mark.parametrize("field", ["kind", "inputs", "producer"])
    def test_every_manifest_field_feeds_the_id(self, field):
        base = dict(kind="k", inputs={"x": 1}, producer="p")
        other = dict(base)
        other[field] = {"x": 2} if field == "inputs" else "other"
        assert (derive_artifact_id(base["kind"], base["inputs"],
                                   producer=base["producer"])
                != derive_artifact_id(other["kind"], other["inputs"],
                                      producer=other["producer"]))

    def test_non_json_inputs_raise(self):
        with pytest.raises(ArtifactError, match="JSON-primitive"):
            derive_artifact_id("k", {"bad": object()}, producer="p")
        with pytest.raises(ArtifactError, match="must be a dict"):
            canonical_inputs([1, 2, 3])

    def test_default_producer_is_the_code_version(self):
        from repro.perf.cache import code_version

        assert (derive_artifact_id("k", {}) ==
                derive_artifact_id("k", {}, producer=code_version()))


class TestPutGet:
    def test_round_trip(self, store):
        value = {"rows": [[1, 2.5], [3, 4.5]], "label": "x"}
        art_id = store.put("demo", {"case": 1}, value, producer=PRODUCER)
        assert art_id == derive_artifact_id("demo", {"case": 1},
                                            producer=PRODUCER)
        assert art_id in store
        assert store.get(art_id) == value
        assert store.stats()["hits"] == 1

    def test_repeat_put_is_idempotent(self, store):
        first = store.put("demo", {"case": 1}, {"v": 1}, producer=PRODUCER)
        again = store.put("demo", {"case": 1}, {"v": 1}, producer=PRODUCER)
        assert first == again
        assert store.puts == 1  # the second put never rewrote anything

    def test_get_miss_returns_default(self, store):
        sentinel = object()
        assert store.get("art_" + "0" * 16, sentinel) is sentinel
        assert store.stats()["misses"] == 1

    def test_unpicklable_value_fails_put_cleanly(self, store):
        art_id = store.put("demo", {"case": 1}, lambda: None,
                           producer=PRODUCER)
        assert art_id is None
        assert store.write_failures == 1
        assert store.stats()["objects"] == 0

    def test_get_or_build_builds_once(self, store):
        calls = []

        def build():
            calls.append(1)
            return {"big": list(range(32))}

        v1, id1 = store.get_or_build("demo", {"case": 2}, build,
                                     producer=PRODUCER)
        v2, id2 = store.get_or_build("demo", {"case": 2}, build,
                                     producer=PRODUCER)
        assert v1 == v2 and id1 == id2
        assert len(calls) == 1

    def test_meta_lands_in_the_manifest(self, store):
        art_id = store.put("demo", {"case": 3}, 42,
                           meta={"note": "hello"}, producer=PRODUCER)
        manifest = store.read_manifest(art_id)
        assert manifest["meta"] == {"note": "hello"}
        assert manifest["kind"] == "demo"
        assert manifest["producer"] == PRODUCER

    def test_fsync_opt_out_still_round_trips(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS_FSYNC", "0")
        art_id = store.put("demo", {"case": 4}, "v", producer=PRODUCER)
        assert store.get(art_id) == "v"
        assert store.verify()["ok"] == 1


class TestQuarantine:
    def _corrupt_payload(self, store, art_id):
        payload = store.payload_path(art_id)
        data = bytearray(payload.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload.write_bytes(bytes(data))

    def test_corrupt_read_quarantines_and_warns_once(self, store):
        ids = _put_demo(store, 2)
        for art_id in ids:
            self._corrupt_payload(store, art_id)
        with pytest.warns(RuntimeWarning, match="quarantined corrupt entry"):
            assert store.get(ids[0], "fallback") == "fallback"
        # Second quarantine is counted but not re-warned.
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert store.get(ids[1], "fallback") == "fallback"
        assert store.quarantined == 2
        stats = store.stats()
        assert stats["objects"] == 0
        assert stats["quarantine_entries"] == 2
        records = store.quarantine_entries()
        assert {r["id"] for r in records} == set(ids)
        assert all("sha256" in r["reason"] for r in records)

    def test_quarantined_entry_rebuilds_on_next_reference(self, store):
        art_id = store.put("demo", {"n": 0}, {"value": 0}, producer=PRODUCER)
        self._corrupt_payload(store, art_id)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            value, rebuilt = store.get_or_build(
                "demo", {"n": 0}, lambda: {"value": 0}, producer=PRODUCER)
        assert rebuilt == art_id and value == {"value": 0}
        assert store.get(art_id) == {"value": 0}  # served again
        assert store.verify()["ok"] == 1

    def test_verify_rehashes_the_corpus(self, store):
        ids = _put_demo(store, 3)
        self._corrupt_payload(store, ids[1])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            report = store.verify()
        assert report["checked"] == 3 and report["ok"] == 2
        assert [r["id"] for r in report["quarantined"]] == [ids[1]]
        assert report["quarantine_entries"] == 1

    def test_verify_catches_edited_manifest(self, store):
        """A self-consistent manifest+payload pair under the wrong id —
        only the id re-derivation check can catch this."""
        art_id = _put_demo(store)[0]
        manifest = json.loads(store.manifest_path(art_id).read_bytes())
        manifest["inputs"] = {"n": 999}  # lie about the inputs
        store.manifest_path(art_id).write_text(
            json.dumps(manifest, sort_keys=True))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            report = store.verify()
        assert len(report["quarantined"]) == 1
        assert "re-derive" in report["quarantined"][0]["reason"]

    def test_unpicklable_payload_quarantines_with_distinct_reason(
            self, store):
        art_id = _put_demo(store)[0]
        import hashlib
        import pickletools  # noqa: F401  (stdlib sanity: pickle is here)

        garbage = b"\x80\x05not a pickle at all"
        store.payload_path(art_id).write_bytes(garbage)
        # Make the manifest consistent with the garbage so the hash
        # passes and only unpickling fails.
        manifest = json.loads(store.manifest_path(art_id).read_bytes())
        manifest["payload_sha256"] = hashlib.sha256(garbage).hexdigest()
        manifest["payload_bytes"] = len(garbage)
        store.manifest_path(art_id).write_text(
            json.dumps(manifest, sort_keys=True))
        with pytest.warns(RuntimeWarning, match="does not unpickle"):
            assert store.get(art_id, None) is None
        assert store.quarantined == 1


KILL_POINTS = ["pre-fsync", "post-payload", "pre-rename", "post-rename"]

_KILL_WRITER = """
import os, signal, sys
sys.path.insert(0, {src!r})
import repro.artifacts as A

point, store_dir = sys.argv[1], sys.argv[2]

def die(*args, **kwargs):
    os.kill(os.getpid(), signal.SIGKILL)

if point == "pre-fsync":
    A._fsync_file = die                 # payload written, nothing durable
elif point == "post-payload":
    A._write_manifest = die             # payload durable, no manifest
elif point == "pre-rename":
    A._publish = die                    # complete temp entry, unpublished
elif point == "post-rename":
    _rename = os.rename
    def publish_then_die(src, dst):
        _rename(src, dst)
        die()
    A._publish = publish_then_die       # published, then crashed
else:
    raise SystemExit(f"unknown kill point {{point!r}}")

store = A.ArtifactStore(directory=store_dir)
store.put("kill-test", {{"point": point}}, {{"data": list(range(256))}},
          producer={producer!r})
print("WRITER-SURVIVED")               # must be unreachable
"""


class TestKillDuringWrite:
    """Satellite 3: SIGKILL a writer at injected points; the store is
    always complete-and-verifiable or empty, with no temp leaks."""

    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_killed_writer_leaves_no_partial_entry(self, tmp_path, point):
        store_dir = tmp_path / "cache"
        script = _KILL_WRITER.format(src=SRC_ROOT, producer=PRODUCER)
        proc = subprocess.run(
            [sys.executable, "-c", script, point, str(store_dir)],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == -signal.SIGKILL, (proc.stdout, proc.stderr)
        assert "WRITER-SURVIVED" not in proc.stdout

        store = ArtifactStore(directory=store_dir)
        report = store.verify()  # re-hashes everything + sweeps dead tmp
        assert report["quarantined"] == []  # nothing partial was published
        art_id = derive_artifact_id("kill-test", {"point": point},
                                    producer=PRODUCER)
        if point == "post-rename":
            # The crash landed after publication: complete and servable.
            assert report["checked"] == 1 and report["ok"] == 1
            assert store.get(art_id) == {"data": list(range(256))}
        else:
            # Crash before publication: the store is empty.
            assert report["checked"] == 0
            assert art_id not in store
        # The dead writer's temp directory was swept — no leaks.
        assert store.stats()["tmp_entries"] == 0
        # And a fresh writer converges on the complete entry either way.
        rebuilt = store.put("kill-test", {"point": point},
                            {"data": list(range(256))}, producer=PRODUCER)
        assert rebuilt == art_id
        assert store.verify()["ok"] == 1


@needs_fork
class TestConcurrentWriters:
    def test_same_id_writers_converge_lock_free(self, tmp_path):
        """N processes race the same content address; exactly one entry
        results, every writer reports success, nothing leaks."""
        store_dir = tmp_path / "cache"
        n = 8
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(n)
        results = ctx.SimpleQueue()

        def writer(idx):
            local = ArtifactStore(directory=store_dir)
            barrier.wait()  # maximize rename collisions
            art_id = local.put("race", {"shared": True},
                               {"data": list(range(512))}, producer=PRODUCER)
            results.put((idx, art_id, local.races_lost))

        procs = [ctx.Process(target=writer, args=(i,)) for i in range(n)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        outcomes = [results.get() for _ in range(n)]
        ids = {art_id for _, art_id, _ in outcomes}
        assert len(ids) == 1 and None not in ids  # all converged
        store = ArtifactStore(directory=store_dir)
        assert store.ids() == sorted(ids)
        assert store.get(next(iter(ids))) == {"data": list(range(512))}
        report = store.verify()
        assert report["checked"] == report["ok"] == 1
        assert store.stats()["tmp_entries"] == 0  # losers cleaned up


class TestGcLiveness:
    def test_journal_refs_and_pins_survive_gc(self, tmp_path):
        from repro.eval.journal import RunJournal

        base = tmp_path / "cache"
        store = ArtifactStore(directory=base)
        journaled, pinned, dead = _put_demo(store, 3)
        journal = RunJournal.create(spec={}, directory=base)
        journal.record_job("fp-1", "ok", artifact=journaled)
        store.pin(pinned)

        plan = store.gc()  # dry-run by default
        assert plan["dry_run"] is True
        assert plan["removed"] == [dead]
        assert sorted(plan["kept_live"]) == sorted([journaled, pinned])
        assert store.stats()["objects"] == 3  # dry-run deleted nothing

        outcome = store.gc(apply=True)
        assert outcome["removed"] == [dead]
        assert sorted(store.ids()) == sorted([journaled, pinned])
        assert store.verify()["ok"] == 2

    def test_keep_days_protects_young_unreferenced_entries(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "cache")
        art_id = _put_demo(store)[0]
        fresh = store.gc(keep_days=1.0, apply=True)
        assert fresh["kept_young"] == [art_id] and fresh["removed"] == []
        # A week from now the same entry is swept.
        later = store.gc(keep_days=1.0, apply=True,
                         now=__import__("time").time() + 7 * 86400)
        assert later["removed"] == [art_id]
        assert store.ids() == []

    def test_gc_sweeps_quarantine(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "cache")
        art_id = _put_demo(store)[0]
        payload = store.payload_path(art_id)
        payload.write_bytes(b"\x00" + payload.read_bytes()[1:])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            store.verify()
        assert store.stats()["quarantine_entries"] == 1
        outcome = store.gc(apply=True)
        assert len(outcome["quarantine_removed"]) == 1
        assert store.stats()["quarantine_entries"] == 0

    def test_unpin_removes_protection(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "cache")
        art_id = _put_demo(store)[0]
        store.pin(art_id)
        store.pin(art_id)  # idempotent
        assert store.pins() == {art_id}
        store.unpin(art_id)
        assert store.pins() == set()
        assert store.gc()["removed"] == [art_id]


class TestExportImport:
    @pytest.mark.parametrize("dest_name", ["corpus.tar.gz", "corpus.tar",
                                           "corpus-tree"])
    def test_round_trip(self, tmp_path, dest_name):
        src_store = ArtifactStore(directory=tmp_path / "a")
        ids = _put_demo(src_store, 3)
        dest = tmp_path / dest_name
        outcome = src_store.export(dest)
        assert outcome["exported"] == 3 and outcome["skipped"] == []

        dst_store = ArtifactStore(directory=tmp_path / "b")
        report = dst_store.import_(dest)
        assert report["verified"] == 3
        assert report["imported"] == 3 and report["skipped"] == 0
        assert dst_store.ids() == sorted(ids)
        for i, art_id in enumerate(ids):
            assert dst_store.get(art_id) == {"value": i}
        assert dst_store.verify()["ok"] == 3

    def test_reimport_skips_existing(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "a")
        _put_demo(store, 2)
        dest = tmp_path / "corpus.tgz"
        store.export(dest)
        report = store.import_(dest)
        assert report["imported"] == 0 and report["skipped"] == 2

    def test_export_subset_and_unknown_id(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "a")
        ids = _put_demo(store, 3)
        outcome = store.export(tmp_path / "one.tar", ids=ids[:1])
        assert outcome["exported"] == 1
        with pytest.raises(ArtifactError, match="unknown artifact"):
            store.export(tmp_path / "two.tar", ids=["art_" + "0" * 16])

    def test_export_excludes_corrupt_entries(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "a")
        ids = _put_demo(store, 2)
        payload = store.payload_path(ids[0])
        payload.write_bytes(payload.read_bytes()[:-1])  # truncate
        with pytest.warns(RuntimeWarning, match="quarantined"):
            outcome = store.export(tmp_path / "corpus.tar.gz")
        assert outcome["exported"] == 1
        assert [s["id"] for s in outcome["skipped"]] == [ids[0]]
        # What shipped is importable and clean.
        other = ArtifactStore(directory=tmp_path / "b")
        assert other.import_(tmp_path / "corpus.tar.gz")["imported"] == 1

    def test_import_rejects_flipped_payload_byte(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "a")
        art_id = _put_demo(store)[0]
        tree = tmp_path / "tree"
        store.export(tree)
        victim = tree / "objects" / art_id / "payload.bin"
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0x01
        victim.write_bytes(bytes(data))

        target = ArtifactStore(directory=tmp_path / "b")
        with pytest.raises(ArtifactIntegrityError, match="does not match"):
            target.import_(tree)
        assert target.ids() == []  # nothing published

    def test_import_rejects_edited_manifest(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "a")
        art_id = _put_demo(store)[0]
        tree = tmp_path / "tree"
        store.export(tree)
        mpath = tree / "objects" / art_id / "manifest.json"
        manifest = json.loads(mpath.read_bytes())
        manifest["inputs"] = {"n": 12345}
        mpath.write_text(json.dumps(manifest, sort_keys=True))

        target = ArtifactStore(directory=tmp_path / "b")
        with pytest.raises(ArtifactIntegrityError, match="re-derive"):
            target.import_(tree)
        assert target.ids() == []

    def test_import_rejects_partial_tree(self, tmp_path):
        import shutil

        store = ArtifactStore(directory=tmp_path / "a")
        ids = _put_demo(store, 2)
        tree = tmp_path / "tree"
        store.export(tree)
        shutil.rmtree(tree / "objects" / ids[0])

        target = ArtifactStore(directory=tmp_path / "b")
        with pytest.raises(ArtifactIntegrityError, match="partial"):
            target.import_(tree)
        assert target.ids() == []  # all-or-nothing: entry 2 not published

    def test_import_rejects_truncated_tarball(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "a")
        _put_demo(store, 2)
        dest = tmp_path / "corpus.tar.gz"
        store.export(dest)
        data = dest.read_bytes()
        dest.write_bytes(data[:len(data) // 2])

        target = ArtifactStore(directory=tmp_path / "b")
        with pytest.raises(ArtifactIntegrityError,
                           match="truncated or corrupt"):
            target.import_(dest)
        assert target.ids() == []

    def test_import_rejects_tree_without_corpus_index(self, tmp_path):
        store = ArtifactStore(directory=tmp_path / "a")
        _put_demo(store)
        tree = tmp_path / "tree"
        store.export(tree)
        (tree / "corpus.json").unlink()
        target = ArtifactStore(directory=tmp_path / "b")
        with pytest.raises(ArtifactIntegrityError, match="corpus.json"):
            target.import_(tree)


class TestFaultHooks:
    def test_torn_rename_abandons_the_publish(self, store):
        with inject_faults(torn_rename=1.0):
            art_id = store.put("demo", {"n": 0}, {"value": 0},
                               producer=PRODUCER)
        assert art_id is None
        assert store.stats()["objects"] == 0
        # The abandoned temp entry is droppable garbage, and a later
        # fault-free writer publishes cleanly.
        assert store.stats()["tmp_entries"] >= 1
        rebuilt = store.put("demo", {"n": 0}, {"value": 0},
                            producer=PRODUCER)
        assert rebuilt is not None
        assert store.verify()["ok"] == 1

    def test_corrupt_artifact_damages_the_published_payload(self, store):
        with inject_faults(corrupt_artifact=1.0):
            art_id = store.put("demo", {"n": 0}, {"value": 0},
                               producer=PRODUCER)
        assert art_id is not None  # publish succeeded, then bit-rot
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.get(art_id, "miss") == "miss"
        assert store.quarantined == 1

    def test_cache_readonly_latches_the_store(self, store):
        with inject_faults(cache_readonly=1.0), pytest.warns(
                RuntimeWarning, match="unwritable"):
            assert store.put("demo", {"n": 0}, 1, producer=PRODUCER) is None
        assert store.write_failures == 1
        # Latched: later writes fail silently even without the fault.
        assert store.put("demo", {"n": 1}, 2, producer=PRODUCER) is None
        assert store.stats()["objects"] == 0


class TestDiskCacheSpill:
    def test_large_entries_spill_into_the_artifact_store(
            self, tmp_path, monkeypatch):
        from repro.perf.cache import DiskCache

        monkeypatch.setenv("REPRO_ARTIFACTS_SPILL_BYTES", "64")
        store = ArtifactStore(directory=tmp_path / "cache")
        cache = DiskCache("spill-test", directory=tmp_path / "cache",
                          namespace="ns", spill_store=store)
        big = {"data": list(range(256))}
        cache.put("big-key", big)
        assert cache.spills == 1
        kinds = [e["kind"] for e in store.list_entries()]
        assert kinds == ["cache-spill"]
        assert cache.get("big-key") == big

        small = "tiny"
        cache.put("small-key", small)
        assert cache.spills == 1  # under the threshold: stays a memo file
        assert cache.get("small-key") == small

    def test_spilled_entry_missing_from_store_reads_as_miss(
            self, tmp_path, monkeypatch):
        from repro.perf.cache import DiskCache

        monkeypatch.setenv("REPRO_ARTIFACTS_SPILL_BYTES", "64")
        store = ArtifactStore(directory=tmp_path / "cache")
        cache = DiskCache("spill-test", directory=tmp_path / "cache",
                          namespace="ns", spill_store=store)
        cache.put("big-key", {"data": list(range(256))})
        store.clear()  # the spilled artifact vanishes (e.g. gc'd)
        with pytest.warns(RuntimeWarning, match="dangling|backing artifact"):
            assert cache.get("big-key", "fallback") == "fallback"
        assert cache.dangling_stubs == 1
        assert cache.stats()["dangling_stubs"] == 1
        # The stub was dropped, so the next read is a plain miss — no
        # second resolve attempt, no raise, and no repeat warning.
        assert cache.get("big-key", "fallback") == "fallback"
        assert cache.dangling_stubs == 1

    def test_dangling_stub_warns_once_per_store(self, tmp_path, monkeypatch):
        import warnings as warnings_mod

        from repro.perf.cache import DiskCache

        monkeypatch.setenv("REPRO_ARTIFACTS_SPILL_BYTES", "64")
        store = ArtifactStore(directory=tmp_path / "cache")
        cache = DiskCache("spill-test", directory=tmp_path / "cache",
                          namespace="ns", spill_store=store)
        cache.put("key-a", {"data": list(range(256))})
        cache.put("key-b", {"data": list(range(256, 512))})
        store.clear()
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            assert cache.get("key-a") is None
            assert cache.get("key-b") is None
        dangling = [w for w in caught
                    if "backing artifact" in str(w.message)]
        assert len(dangling) == 1  # warned once, counted twice
        assert cache.dangling_stubs == 2


class TestEngineIntegration:
    def test_warm_replay_consumes_artifacts_and_journals_ids(self, tmp_path):
        from repro.eval.engine import SweepEngine
        from repro.eval.journal import RunJournal, referenced_artifacts
        from repro.report import run_experiment

        cache = tmp_path / "cache"
        cold = SweepEngine(workers=0, cache_dir=cache,
                           journal=RunJournal.create(spec={}, directory=cache))
        first = run_experiment("stall_table", engine=cold,
                               datasets=("cora",))
        assert cold.executed_jobs > 0
        loaded = RunJournal.load(cold.journal.run_id, directory=cache)
        journaled_ids = loaded.artifact_ids()
        assert journaled_ids  # every ok line promises a published entry
        assert all(i.startswith("art_") for i in journaled_ids)
        assert journaled_ids <= set(cold.artifacts.ids())
        assert referenced_artifacts(directory=cache) >= journaled_ids

        # A fresh engine over the same store replays from artifacts.
        warm = SweepEngine(workers=0, cache_dir=cache)
        second = run_experiment("stall_table", engine=warm,
                                datasets=("cora",))
        assert warm.executed_jobs == 0
        assert second.rows == first.rows
        consumed = second.metadata["artifacts"]
        assert set(consumed) == journaled_ids
        assert set(consumed.values()) == {"sim-report"}

    def test_engine_stats_surface_the_artifact_store(self, tmp_path):
        from repro.eval.engine import SweepEngine

        engine = SweepEngine(workers=0, cache_dir=tmp_path / "cache")
        assert engine.stats()["artifacts"]["objects"] == 0


class TestGlobalStore:
    def test_follows_the_cache_dir(self, tmp_path):
        with temporary_cache_dir(tmp_path / "one"):
            first = artifact_store()
            assert first.base == tmp_path / "one"
            assert artifact_store() is first  # cached per directory
        with temporary_cache_dir(tmp_path / "two"):
            assert artifact_store().base == tmp_path / "two"


def _flat_store(tmp_path, n=4):
    """A legacy flat-layout store with n entries (knob forced off)."""
    os.environ["REPRO_ARTIFACTS_SHARD"] = "0"
    try:
        store = ArtifactStore(directory=tmp_path / "cache")
        ids = _put_demo(store, n)
    finally:
        del os.environ["REPRO_ARTIFACTS_SHARD"]
    return store, ids


_KILL_MIGRATOR = """
import os, signal, sys
sys.path.insert(0, {src!r})
import repro.artifacts as A

store_dir, survive = sys.argv[1], int(sys.argv[2])
_publish = A._publish
moves = []

def publish_then_maybe_die(src, dst):
    _publish(src, dst)
    moves.append(dst)
    if len(moves) >= survive:
        os.kill(os.getpid(), signal.SIGKILL)

A._publish = publish_then_maybe_die
A.ArtifactStore(directory=store_dir).migrate()
print("MIGRATOR-SURVIVED")             # must be unreachable
"""


class TestSharding:
    """Tentpole (a): the sharded ``objects/<xx>/`` layout, the
    crash-safe in-place migration, and satellite 3's cross-layout
    export/import round trips."""

    def test_put_lands_in_the_shard_directory(self, store):
        from repro.artifacts import shard_of

        art_id = _put_demo(store)[0]
        shard = shard_of(art_id)
        assert len(shard) == 2 and art_id[4:6] == shard
        assert (store.objects / shard / art_id / "payload.bin").is_file()
        assert not (store.objects / art_id).exists()
        assert store.get(art_id) == {"value": 0}
        assert store.stats()["shards"] >= 1
        assert store.stats()["flat_objects"] == 0

    def test_shard_knob_restores_the_flat_layout(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS_SHARD", "0")
        store = ArtifactStore(directory=tmp_path / "cache")
        art_id = _put_demo(store)[0]
        assert (store.objects / art_id / "payload.bin").is_file()
        assert store.stats()["flat_objects"] == 1

    def test_reads_resolve_both_layouts(self, tmp_path):
        store, ids = _flat_store(tmp_path, 2)
        sharded = _put_demo(store, 3)[2]  # default knob: sharded
        for i, art_id in enumerate(ids):
            assert store.get(art_id) == {"value": i}  # flat legacy entry
        assert store.get(sharded) == {"value": 2}
        assert sorted(store.ids()) == sorted(set(ids) | {sharded})
        report = store.verify()
        assert report["ok"] == 3 and report["dual_layout"] == []
        assert report["shards"]["flat"] == 2

    def test_migrate_moves_everything_and_is_idempotent(self, tmp_path):
        store, ids = _flat_store(tmp_path, 4)
        outcome = store.migrate()
        assert outcome["moved"] == 4 and outcome["failed"] == []
        assert outcome["remaining_flat"] == 0
        for i, art_id in enumerate(ids):
            assert store._sharded_dir(art_id).is_dir()
            assert not store._flat_dir(art_id).exists()
            assert store.get(art_id) == {"value": i}
        report = store.verify()
        assert report["ok"] == 4 and report["dual_layout"] == []
        again = store.migrate()
        assert again["moved"] == again["deduped"] == 0

    def test_migrate_dedupes_ids_already_sharded(self, tmp_path):
        import shutil

        store, ids = _flat_store(tmp_path, 2)
        # Simulate a concurrent writer having already published ids[0]
        # in the sharded location: migrate keeps that copy and drops
        # the redundant flat one (same content address, same bytes).
        target = store._sharded_dir(ids[0])
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copytree(store._flat_dir(ids[0]), target)
        outcome = store.migrate()
        assert outcome["moved"] == 1 and outcome["deduped"] == 1
        assert store.verify()["dual_layout"] == []

    def test_migrate_reports_invalid_flat_entries(self, tmp_path):
        store, _ = _flat_store(tmp_path, 1)
        (store.objects / "not-an-id").mkdir()
        outcome = store.migrate()
        assert outcome["moved"] == 1
        assert [f["id"] for f in outcome["failed"]] == ["not-an-id"]

    def test_verify_flags_dual_layout_entries(self, tmp_path):
        import shutil

        store, ids = _flat_store(tmp_path, 2)
        clash = ids[0]
        target = store._sharded_dir(clash)
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copytree(store._flat_dir(clash), target)
        report = store.verify()
        assert report["dual_layout"] == [clash]
        # The CLI turns that into a non-zero exit.
        from repro.cli import main

        with temporary_cache_dir(store.base):
            assert main(["artifacts", "verify"]) == 1
        # migrate converges the clash, after which verify is clean.
        store.migrate()
        report = store.verify()
        assert report["dual_layout"] == [] and report["quarantined"] == []
        with temporary_cache_dir(store.base):
            assert main(["artifacts", "verify"]) == 0

    def test_gc_removes_both_layout_copies(self, tmp_path):
        import shutil

        store, ids = _flat_store(tmp_path, 1)
        target = store._sharded_dir(ids[0])
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copytree(store._flat_dir(ids[0]), target)
        outcome = store.gc(apply=True)
        assert outcome["removed"] == [ids[0]]
        assert not store._flat_dir(ids[0]).exists()
        assert not store._sharded_dir(ids[0]).exists()

    def test_sigkill_mid_migration_leaves_every_entry_readable(
            self, tmp_path):
        """Satellite 3 + tentpole: SIGKILL after 2 of 6 moves — every
        entry stays readable in exactly one location, verify() is
        clean, a re-run finishes the migration, and the half-migrated
        store still exports a complete verified corpus."""
        store, ids = _flat_store(tmp_path, 6)
        script = _KILL_MIGRATOR.format(src=SRC_ROOT)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(store.base), "2"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == -signal.SIGKILL, (proc.stdout, proc.stderr)
        assert "MIGRATOR-SURVIVED" not in proc.stdout

        store = ArtifactStore(directory=store.base)
        report = store.verify()
        assert report["checked"] == 6 and report["ok"] == 6
        assert report["quarantined"] == [] and report["dual_layout"] == []
        for i, art_id in enumerate(ids):
            locations = [store._flat_dir(art_id).is_dir(),
                         store._sharded_dir(art_id).is_dir()]
            assert locations.count(True) == 1  # exactly one location
            assert store.get(art_id) == {"value": i}

        # The half-migrated store exports a complete verified corpus.
        dest = tmp_path / "corpus.tar.gz"
        outcome = store.export(dest)
        assert outcome["exported"] == 6 and outcome["skipped"] == []
        fresh = ArtifactStore(directory=tmp_path / "fresh")
        assert fresh.import_(dest)["verified"] == 6

        # And a re-run resumes with whatever is still flat.
        resumed = store.migrate()
        assert resumed["moved"] == 4 and resumed["failed"] == []
        assert resumed["remaining_flat"] == 0
        assert store.verify()["ok"] == 6

    def test_torn_rename_fault_interrupts_and_resumes(self, tmp_path):
        store, ids = _flat_store(tmp_path, 3)
        with inject_faults(torn_rename=1.0):
            outcome = store.migrate()
        assert outcome["moved"] == 0
        assert len(outcome["failed"]) == 3
        assert outcome["remaining_flat"] == 3
        assert store.verify()["ok"] == 3  # still fully readable
        resumed = store.migrate()
        assert resumed["moved"] == 3 and resumed["remaining_flat"] == 0

    @pytest.mark.parametrize("direction", ["flat-to-sharded",
                                           "sharded-to-flat"])
    def test_export_import_round_trip_across_layouts(self, tmp_path,
                                                     monkeypatch,
                                                     direction):
        """Satellite 3: corpora move cleanly between layout
        generations in both directions, and ids re-derive on import."""
        src_flat = direction == "flat-to-sharded"
        monkeypatch.setenv("REPRO_ARTIFACTS_SHARD", "0" if src_flat else "1")
        src_store = ArtifactStore(directory=tmp_path / "src")
        ids = _put_demo(src_store, 3)
        dest = tmp_path / "corpus.tar.gz"
        assert src_store.export(dest)["exported"] == 3

        monkeypatch.setenv("REPRO_ARTIFACTS_SHARD", "1" if src_flat else "0")
        dst_store = ArtifactStore(directory=tmp_path / "dst")
        report = dst_store.import_(dest)
        assert report["imported"] == report["verified"] == 3
        for i, art_id in enumerate(ids):
            assert dst_store.get(art_id) == {"value": i}
            # The entry landed in the destination's native layout.
            native = (dst_store._sharded_dir(art_id) if src_flat
                      else dst_store._flat_dir(art_id))
            assert native.is_dir()
        verified = dst_store.verify()
        assert verified["ok"] == 3 and verified["quarantined"] == []
