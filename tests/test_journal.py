"""Run journals: durable append, torn-line tolerance, resume queries."""

import json

import pytest

from repro.eval.journal import (RunJournal, gc_runs, list_runs,
                                new_run_id, runs_dir)


class TestRunJournal:
    def test_create_load_round_trip(self, tmp_path):
        journal = RunJournal.create(
            spec={"experiments": ["stall_table"], "suite": "quick"},
            directory=tmp_path)
        journal.record_job("fp-1", "ok", attempts=1, elapsed_s=0.5)
        journal.record_job("fp-2", "failed", attempts=3, elapsed_s=1.25,
                           error="ValueError: boom", kind="error")
        journal.record_experiment("stall_table", executed=1, failed=1)
        journal.record_event("run-complete")

        loaded = RunJournal.load(journal.run_id, directory=tmp_path)
        assert loaded.spec == {"experiments": ["stall_table"],
                               "suite": "quick"}
        assert loaded.completed_jobs() == {"fp-1"}
        assert loaded.failed_jobs() == {"fp-2"}
        assert loaded.completed_experiments() == {"stall_table"}
        assert loaded.complete

    def test_load_missing_run_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunJournal.load("run-never-created", directory=tmp_path)

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        journal = RunJournal.create(spec={}, directory=tmp_path)
        journal.record_job("fp-1", "ok")
        with open(journal.path, "a") as fh:
            fh.write('{"type": "job", "fingerprint": "fp-2", "sta')

        loaded = RunJournal.load(journal.run_id, directory=tmp_path)
        assert loaded.completed_jobs() == {"fp-1"}
        assert not loaded.complete

    def test_torn_header_line_loses_run_header(self, tmp_path):
        """A journal whose only line (the run-spec header) is torn loads
        with ``has_run_header`` False — the resume path refuses it
        instead of silently running the default spec."""
        journal = RunJournal.create(spec={"experiments": ["stall_table"]},
                                    directory=tmp_path)
        assert journal.has_run_header
        journal.path.write_text('{"type": "run", "spec": {"experi')
        loaded = RunJournal.load(journal.run_id, directory=tmp_path)
        assert not loaded.has_run_header
        assert loaded.spec == {}

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = RunJournal.create(spec={}, directory=tmp_path)
        lines = journal.path.read_text().splitlines()
        journal.path.write_text("\n".join([lines[0], "not json",
                                           json.dumps({"type": "job"})])
                                + "\n")
        with pytest.raises(ValueError, match="corrupt at line 2"):
            RunJournal.load(journal.run_id, directory=tmp_path)

    def test_unwritable_journal_warns_once_and_continues(self, tmp_path):
        blocker = tmp_path / "occupied"
        blocker.write_text("a file where the runs dir should go")
        journal = RunJournal(new_run_id(), directory=blocker / "nested")
        with pytest.warns(RuntimeWarning, match="unwritable"):
            journal.append({"type": "run", "spec": {}})
        journal.record_job("fp-1", "ok")  # no second warning, no raise
        assert journal.completed_jobs() == {"fp-1"}  # in-memory view intact

    def test_records_are_fsynced_line_per_append(self, tmp_path):
        journal = RunJournal.create(spec={}, directory=tmp_path)
        journal.record_job("fp-1", "ok")
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2  # header + job, durable without close()
        assert json.loads(lines[1])["fingerprint"] == "fp-1"


class TestRunsDirectory:
    def test_new_run_ids_are_unique_and_sortable(self):
        ids = {new_run_id() for _ in range(5)}
        assert len(ids) == 5
        assert all(run_id.startswith("run-") for run_id in ids)

    def test_list_runs(self, tmp_path):
        assert list_runs(tmp_path) == []
        a = RunJournal.create(spec={}, directory=tmp_path)
        b = RunJournal.create(spec={}, directory=tmp_path)
        assert set(list_runs(tmp_path)) == {a.run_id, b.run_id}
        assert runs_dir(tmp_path) == tmp_path / "runs"


class TestGcRuns:
    """`gc_runs` / `repro list runs --gc`: pruning journaled runs."""

    def test_removes_completed_keeps_resumable(self, tmp_path):
        done = RunJournal.create(run_id="done", directory=tmp_path, spec={})
        done.record_event("run-complete")
        RunJournal.create(run_id="open", directory=tmp_path, spec={})
        outcome = gc_runs(directory=tmp_path)
        assert outcome == {"removed": ["done"], "kept": ["open"]}
        assert list_runs(tmp_path) == ["open"]

    def test_force_removes_resumable(self, tmp_path):
        RunJournal.create(run_id="open", directory=tmp_path, spec={})
        assert gc_runs(directory=tmp_path, force=True)["removed"] == ["open"]
        assert list_runs(tmp_path) == []

    def test_keep_days_spares_recent_completed_runs(self, tmp_path):
        import time

        done = RunJournal.create(run_id="recent", directory=tmp_path, spec={})
        done.record_event("run-complete")
        assert gc_runs(keep_days=1, directory=tmp_path)["kept"] == ["recent"]
        future = time.time() + 2 * 86400
        assert gc_runs(keep_days=1, directory=tmp_path,
                       now=future)["removed"] == ["recent"]

    def test_unreadable_journal_kept_unless_forced(self, tmp_path):
        bad = runs_dir(tmp_path) / "bad"
        bad.mkdir(parents=True)
        (bad / "journal.jsonl").write_text('{"type": "run"\n{{{\nmore\n')
        assert gc_runs(directory=tmp_path)["kept"] == ["bad"]
        assert gc_runs(directory=tmp_path, force=True)["removed"] == ["bad"]

    def test_created_property_reads_header(self, tmp_path):
        journal = RunJournal.create(run_id="stamped", directory=tmp_path,
                                    spec={})
        loaded = RunJournal.load("stamped", directory=tmp_path)
        assert loaded.created is not None and loaded.created > 0
