"""The unified ``python -m repro`` CLI (in-process via ``cli.main``)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.eval.engine import temporary_cache_dir
from repro.eval.journal import RunJournal
from repro.faults import parse_fault_spec
from repro.registry import get_experiment
from repro.report import validate_artifact_dict

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")


class TestList:
    def test_list_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("accelerators", "datasets", "suites", "experiments"):
            assert section in out
        assert "mega" in out and "powerlaw-10k" in out
        assert "speedup_table" in out

    def test_list_one_section(self, capsys):
        assert main(["list", "accelerators"]) == 0
        out = capsys.readouterr().out
        assert "mega" in out
        assert "speedup_table" not in out


class TestRun:
    def test_run_speedup_table_quick_suite(self, sweep_engine, capsys,
                                           tmp_path):
        """The ISSUE's smoke line: repro run speedup_table --suite quick."""
        rc = main(["run", "speedup_table", "--suite", "quick",
                   "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup_table" in out and "geomean" in out
        data = json.loads((tmp_path / "speedup_table.json").read_text())
        validate_artifact_dict(data)
        # Quick suite = 5 workloads + the geomean row.
        assert len(data["rows"]) == 6
        # Every speedup vs MEGA is > 1 (the paper's headline result).
        for row in data["rows"]:
            for col, value in row.items():
                if col != "row":
                    assert value > 1.0, (row["row"], col)

    def test_run_scale_sweep_scenario(self, sweep_engine, capsys, tmp_path):
        """A synthetic scenario suite runs end-to-end through the CLI."""
        rc = main(["run", "stall_table", "--suite", "scale-sweep",
                   "--out", str(tmp_path), "--quiet"])
        assert rc == 0
        data = json.loads((tmp_path / "stall_table.json").read_text())
        validate_artifact_dict(data)
        rows = {row["row"] for row in data["rows"]}
        assert "powerlaw-10k" in rows

    def test_run_smoke_set_without_experiment(self, sweep_engine, capsys,
                                              tmp_path):
        rc = main(["run", "--suite", "smoke", "--quiet",
                   "--out", str(tmp_path), "--formats", "json,md"])
        assert rc == 0
        written = list(tmp_path.glob("*.json"))
        assert len(written) >= 5  # every smoke-flagged experiment
        for path in written:
            validate_artifact_dict(json.loads(path.read_text()))
        assert len(list(tmp_path.glob("*.md"))) == len(written)

    def test_warm_rerun_executes_zero_jobs(self, sweep_engine, capsys):
        assert main(["run", "stall_table", "--quiet"]) == 0
        executed_cold = sweep_engine.executed_jobs
        assert executed_cold > 0
        assert main(["run", "stall_table", "--quiet"]) == 0
        assert sweep_engine.executed_jobs == executed_cold

    def test_bad_formats_fail_before_running(self, sweep_engine, capsys,
                                             tmp_path):
        rc = main(["run", "stall_table", "--out", str(tmp_path),
                   "--formats", "json,cvs"])
        assert rc == 2
        assert "unknown --formats" in capsys.readouterr().err
        assert sweep_engine.executed_jobs == 0  # nothing ran
        assert not list(tmp_path.iterdir())

    def test_unknown_experiment_fails_before_running(self, sweep_engine,
                                                     capsys):
        rc = main(["run", "stall_table", "no_such_experiment"])
        assert rc == 2
        assert sweep_engine.executed_jobs == 0  # typo caught up front

    def test_unknown_experiment_lists_available(self, capsys):
        rc = main(["run", "no_such_experiment"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "speedup_table" in err

    def test_unknown_suite_lists_available(self, capsys):
        rc = main(["run", "speedup_table", "--suite", "no-such-suite"])
        assert rc == 2
        assert "quick" in capsys.readouterr().err

    def test_suite_on_non_suite_experiment_errors(self, capsys):
        rc = main(["run", "ablation_fig19", "--suite", "quick"])
        assert rc == 2
        assert "not suite-parameterized" in capsys.readouterr().err


class TestBenchForwarding:
    def test_bench_help_forwards(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--help"])
        assert exc.value.code == 0
        assert "Benchmark" in capsys.readouterr().out


class TestRobustnessFlags:
    """--retries/--timeout/--fail-fast/--run-id/--resume/--no-journal."""

    @pytest.fixture(autouse=True)
    def _restore_job_env(self, monkeypatch):
        """The CLI exports --retries/--timeout into os.environ for keeps
        (workers must inherit them); setenv-then-delenv registers a
        restore even for variables that start out unset."""
        for var in ("REPRO_JOB_RETRIES", "REPRO_JOB_TIMEOUT"):
            monkeypatch.setenv(var, "0")
            monkeypatch.delenv(var)

    def test_run_is_journaled_by_default(self, sweep_engine, capsys):
        rc = main(["run", "stall_table", "--quiet",
                   "--run-id", "cli-test-journaled"])
        assert rc == 0
        assert "resume with" in capsys.readouterr().out
        from repro.eval.journal import RunJournal

        journal = RunJournal.load("cli-test-journaled")
        assert journal.complete
        assert journal.spec["experiments"] == ["stall_table"]
        assert len(journal.completed_jobs()) > 0
        assert sweep_engine.journal is None  # detached after the run

    def test_no_journal_opts_out(self, sweep_engine, capsys):
        rc = main(["run", "stall_table", "--quiet", "--no-journal"])
        assert rc == 0
        assert "resume with" not in capsys.readouterr().out

    def test_resume_executes_nothing_after_complete_run(self, sweep_engine,
                                                        capsys):
        assert main(["run", "stall_table", "--quiet",
                     "--run-id", "cli-test-resume"]) == 0
        executed_cold = sweep_engine.executed_jobs
        assert executed_cold > 0
        rc = main(["run", "--resume", "cli-test-resume", "--quiet"])
        assert rc == 0
        assert sweep_engine.executed_jobs == executed_cold

    def test_resume_unknown_run_fails_cleanly(self, sweep_engine, capsys):
        rc = main(["run", "--resume", "run-does-not-exist"])
        assert rc == 2
        assert "no journal" in capsys.readouterr().err

    def test_resume_refuses_headerless_journal(self, sweep_engine, capsys):
        """A journal that lost its run-spec header (torn first line)
        must not resume — it would silently run the default smoke set
        under the old run id."""
        from repro.eval.journal import RunJournal

        assert main(["run", "stall_table", "--quiet",
                     "--run-id", "cli-test-torn"]) == 0
        journal = RunJournal.load("cli-test-torn")
        body = journal.path.read_text().splitlines()[1:]  # drop the header
        journal.path.write_text("\n".join(body) + "\n")
        capsys.readouterr()
        rc = main(["run", "--resume", "cli-test-torn"])
        assert rc == 2
        assert "no run-spec header" in capsys.readouterr().err

    def test_resume_args_explicit_experiments_win(self):
        import argparse

        from repro.cli import _resume_args

        args = argparse.Namespace(experiments=["ablation_fig19"], suite=None,
                                  workers=None, retries=None, timeout=None,
                                  fail_fast=False)
        _resume_args(args, {"experiments": ["stall_table"], "suite": "quick",
                            "workers": 4})
        assert args.experiments == ["ablation_fig19"]  # explicit wins
        assert args.suite == "quick"
        assert args.workers == 4
        args.experiments = []
        _resume_args(args, {"experiments": ["stall_table"]})
        assert args.experiments == ["stall_table"]

    def test_retries_and_timeout_export_env(self, sweep_engine, monkeypatch,
                                            capsys):
        import os

        rc = main(["run", "stall_table", "--quiet", "--no-journal",
                   "--retries", "2", "--timeout", "30"])
        assert rc == 0
        assert os.environ["REPRO_JOB_RETRIES"] == "2"
        assert os.environ["REPRO_JOB_TIMEOUT"] == "30.0"

    def test_exhausted_jobs_exit_one_with_error_report(self, sweep_engine,
                                                       capsys):
        from repro.faults import inject_faults

        with inject_faults(raise_=1.0):
            rc = main(["run", "stall_table", "--quiet", "--no-journal"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and "InjectedFault" in err
        assert "exhausted their retry budget" in err

    def test_retries_recover_injected_faults(self, sweep_engine, capsys):
        from repro.faults import inject_faults

        with inject_faults(raise_=1.0):
            rc = main(["run", "stall_table", "--quiet", "--no-journal",
                       "--retries", "1"])
        assert rc == 0

    def test_fail_fast_raises_out_of_main(self, sweep_engine):
        from repro.faults import InjectedFault, inject_faults

        with inject_faults(raise_=1.0):
            with pytest.raises(InjectedFault):
                main(["run", "stall_table", "--quiet", "--no-journal",
                      "--fail-fast"])

    def test_list_runs(self, sweep_engine, capsys):
        assert main(["run", "stall_table", "--quiet",
                     "--run-id", "cli-test-list"]) == 0
        capsys.readouterr()
        assert main(["list", "runs"]) == 0
        out = capsys.readouterr().out
        assert "cli-test-list" in out and "complete" in out


class TestGcCli:
    """`repro list runs --gc`: prune completed runs from the CLI."""

    @pytest.fixture()
    def gc_cache(self, tmp_path):
        with temporary_cache_dir(tmp_path):
            yield tmp_path

    def test_gc_prunes_completed_keeps_resumable(self, gc_cache, capsys):
        done = RunJournal.create(run_id="gc-done")
        done.record_event("run-complete")
        RunJournal.create(run_id="gc-open")
        assert main(["list", "runs", "--gc"]) == 0
        out = capsys.readouterr().out
        assert "removed gc-done" in out
        assert "removed 1 run(s), kept 1" in out
        assert "need --force" in out
        assert main(["list", "runs"]) == 0
        listing = capsys.readouterr().out
        assert "gc-open" in listing and "gc-done" not in listing

    def test_gc_force_prunes_resumable(self, gc_cache, capsys):
        RunJournal.create(run_id="gc-open")
        assert main(["list", "runs", "--gc", "--force"]) == 0
        out = capsys.readouterr().out
        assert "removed gc-open" in out
        assert main(["list", "runs"]) == 0
        assert "gc-open" not in capsys.readouterr().out

    def test_gc_outside_runs_is_an_error(self, gc_cache, capsys):
        assert main(["list", "accelerators", "--gc"]) == 2
        assert "--gc applies to `list runs` only" in capsys.readouterr().err


class TestArtifactsCli:
    """`repro artifacts list|show|verify|gc|export|import`."""

    @pytest.fixture()
    def art_store(self, tmp_path):
        from repro.artifacts import artifact_store

        with temporary_cache_dir(tmp_path / "cache"):
            yield artifact_store()

    @staticmethod
    def _seed(store, n=2):
        return [store.put("demo", {"n": i}, {"value": i}, producer="cli-t")
                for i in range(n)]

    def test_list_and_show(self, art_store, capsys):
        ids = self._seed(art_store)
        assert main(["artifacts", "list"]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        for art_id in ids:
            assert art_id in out
        assert "demo" in out
        assert main(["artifacts", "show", ids[0]]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["id"] == ids[0]
        assert manifest["inputs"] == {"n": 0}

    def test_show_unknown_id_exits_2(self, art_store, capsys):
        rc = main(["artifacts", "show", "art_" + "0" * 16])
        assert rc == 2
        assert "no artifact" in capsys.readouterr().err

    def test_verify_clean_store_exits_0(self, art_store, capsys):
        self._seed(art_store)
        assert main(["artifacts", "verify"]) == 0
        assert "2 ok, 0 quarantined" in capsys.readouterr().out

    def test_verify_corruption_exits_1_and_quarantines(self, art_store,
                                                       capsys):
        ids = self._seed(art_store)
        payload = art_store.payload_path(ids[0])
        data = bytearray(payload.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload.write_bytes(bytes(data))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            rc = main(["artifacts", "verify"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "1 quarantined" in captured.out
        assert ids[0] in captured.err
        # The quarantined entry no longer lists; the clean one does.
        assert main(["artifacts", "list"]) == 0
        out = capsys.readouterr().out
        assert ids[0] not in out and ids[1] in out

    def test_gc_dry_run_then_force(self, art_store, capsys):
        ids = self._seed(art_store)
        art_store.pin(ids[1])
        assert main(["artifacts", "gc"]) == 0
        out = capsys.readouterr().out
        assert f"would remove {ids[0]}" in out and "dry-run" in out
        assert art_store.stats()["objects"] == 2  # nothing deleted yet
        assert main(["artifacts", "gc", "--force"]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert art_store.ids() == [ids[1]]

    def test_export_import_round_trip(self, art_store, tmp_path, capsys):
        self._seed(art_store, 3)
        dest = tmp_path / "corpus.tar.gz"
        assert main(["artifacts", "export", str(dest)]) == 0
        assert "exported 3 entries" in capsys.readouterr().out
        # Import into a second, empty cache directory.
        from repro.artifacts import artifact_store

        with temporary_cache_dir(tmp_path / "other"):
            assert main(["artifacts", "import", str(dest)]) == 0
            assert "imported 3 entries" in capsys.readouterr().out
            assert artifact_store().verify()["ok"] == 3

    def test_export_unknown_id_exits_2(self, art_store, tmp_path, capsys):
        rc = main(["artifacts", "export", str(tmp_path / "c.tar"),
                   "--ids", "art_" + "f" * 16])
        assert rc == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_import_rejects_tampered_archive(self, art_store, tmp_path,
                                             capsys):
        ids = self._seed(art_store, 1)
        tree = tmp_path / "tree"
        assert main(["artifacts", "export", str(tree)]) == 0
        victim = tree / "objects" / ids[0] / "payload.bin"
        victim.write_bytes(victim.read_bytes()[:-1])  # truncate
        capsys.readouterr()
        from repro.artifacts import artifact_store

        with temporary_cache_dir(tmp_path / "other"):
            rc = main(["artifacts", "import", str(tree)])
            assert rc == 1
            assert "import rejected" in capsys.readouterr().err
            assert artifact_store().ids() == []  # nothing published


def _first_hang_index():
    """Find a chaos seed whose first ``hang`` firing lands mid-sweep.

    Returns ``(seed, index, total)`` over stall_table's default job
    list so the interrupt tests know exactly how many jobs complete
    before the process wedges — deterministic, no sleeps-and-hope.
    """
    spec = get_experiment("stall_table")
    jobs = list(spec.build_jobs(**dict(spec.defaults)).values())
    for seed in range(64):
        plan = parse_fault_spec("hang=0.5:1", seed=seed)
        fired = [i for i, job in enumerate(jobs)
                 if plan.decide("hang", repr(job))]
        if fired and 0 < fired[0] < len(jobs):
            return seed, fired[0], len(jobs)
    raise AssertionError("no seed in 0..63 hangs mid-sweep")


class TestInterruptSignals:
    """SIGINT/SIGTERM mid-sweep: journal stays resumable, exit 130."""

    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM],
                             ids=["sigint", "sigterm"])
    def test_interrupt_mid_sweep_then_resume(self, tmp_path, sig):
        seed, index, total = _first_hang_index()
        cache = tmp_path / "cache"
        journal_path = cache / "runs" / "cli-interrupt" / "journal.jsonl"
        env = os.environ.copy()
        env["PYTHONPATH"] = SRC_ROOT
        env["REPRO_CACHE_DIR"] = str(cache)
        env["REPRO_FAULTS"] = "hang=0.5:1"
        env["REPRO_FAULTS_SEED"] = str(seed)
        env["REPRO_JOB_TIMEOUT"] = "600"
        argv = [sys.executable, "-m", "repro", "run", "stall_table",
                "--quiet", "--run-id", "cli-interrupt"]
        proc = subprocess.Popen(argv, env=env, cwd=str(tmp_path),
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True)
        try:
            # The run wedges (sleeping far past the interrupt) once
            # `index` jobs are journaled; wait for that point.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                done = (journal_path.read_text().count('"status": "ok"')
                        if journal_path.exists() else 0)
                if done >= index:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("sweep never reached the hang job")
            time.sleep(0.2)  # let the hang job enter its sleep
            proc.send_signal(sig)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, (stdout, stderr)
        assert "resume with" in stderr and "cli-interrupt" in stderr
        journal = RunJournal.load("cli-interrupt", directory=cache)
        assert not journal.complete
        assert any(r.get("type") == "interrupted" for r in journal.records)
        assert len(journal.completed_jobs()) == index

        resume_env = env.copy()
        for var in ("REPRO_FAULTS", "REPRO_FAULTS_SEED"):
            resume_env.pop(var, None)
        done = subprocess.run(
            [sys.executable, "-m", "repro", "run",
             "--resume", "cli-interrupt", "--quiet"],
            env=resume_env, cwd=str(tmp_path), capture_output=True,
            text=True, timeout=300)
        assert done.returncode == 0, (done.stdout, done.stderr)
        journal = RunJournal.load("cli-interrupt", directory=cache)
        assert journal.complete
        # Exactly the remaining jobs executed on resume: every job
        # fingerprint journaled once, none twice (cache hits skip the
        # journal, so a duplicate would mean re-execution).
        ok = [r["fingerprint"] for r in journal.records
              if r.get("type") == "job" and r.get("status") == "ok"]
        assert len(ok) == total
        assert len(set(ok)) == total
