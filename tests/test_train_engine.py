"""Tests for the TrainJob path of the job engine: same-seed determinism,
parallel ≡ serial accuracy tables, warm-cache replays that train zero
models, and cross-table deduplication."""

import numpy as np
import pytest

from repro.eval import engine as engine_mod
from repro.eval.accuracy import (
    accuracy_comparison,
    accuracy_grid,
    degree_feature_magnitudes,
    dq_bitwidth_sweep,
)
from repro.eval.engine import SweepEngine, TrainJob
from repro.nn import TrainConfig, build_model, evaluate, evaluate_masks, train
from repro.perf.cache import cached_load_dataset

# Tiny budget: these tests exercise orchestration, not convergence.
QUICK = TrainConfig(epochs=3, patience=100)

JOBS = [TrainJob.from_call("cora", "gcn", flow, kwargs, config=QUICK,
                           seed=seed, scale="tiny")
        for flow, kwargs in (("fp32", None), ("dq", {"bits": 4}))
        for seed in (0, 1)]


def result_key(result):
    """Deterministic fields of a flow result (wall-clock excluded)."""
    return (result.test_accuracy, result.average_bits,
            result.compression_ratio)


class TestTrainJob:
    def test_flow_kwargs_frozen_and_hashable(self):
        from repro.quant import DegreeAwareConfig

        a = TrainJob.from_call("cora", "gcn", "degree-aware",
                               {"quant_config": DegreeAwareConfig()},
                               config=QUICK)
        b = TrainJob.from_call("cora", "gcn", "degree-aware",
                               {"quant_config": DegreeAwareConfig()},
                               config=QUICK)
        assert a == b and hash(a) == hash(b)

    def test_config_digest_distinguishes_budgets(self):
        a = TrainJob.from_call("cora", "gcn", "fp32",
                               config=TrainConfig(epochs=3))
        b = TrainJob.from_call("cora", "gcn", "fp32",
                               config=TrainConfig(epochs=4))
        assert a != b

    def test_unknown_flow_rejected(self):
        with pytest.raises(ValueError):
            TrainJob.from_call("cora", "gcn", "float16")


class TestTrainEngine:
    def test_same_seed_deterministic(self, sweep_engine, tmp_path):
        job = JOBS[0]
        first = sweep_engine.run([job])[job]
        fresh = SweepEngine(workers=0, cache_dir=tmp_path / "other-store")
        second = fresh.run([job])[job]
        assert fresh.executed_train_jobs == 1  # disjoint store: retrained
        assert result_key(first) == result_key(second)
        np.testing.assert_array_equal(first.node_bitwidths,
                                      second.node_bitwidths)

    def test_batch_deduplicates(self, sweep_engine):
        job = JOBS[0]
        sweep_engine.run([job, job, job])
        assert sweep_engine.executed_train_jobs == 1

    def test_parallel_identical_to_serial(self, sweep_engine, tmp_path):
        serial = sweep_engine.run(JOBS)
        parallel_engine = SweepEngine(workers=2,
                                      cache_dir=tmp_path / "parallel-cache")
        parallel = parallel_engine.run(JOBS)
        assert parallel_engine.executed_train_jobs == len(JOBS)
        assert parallel_engine.pool_used
        for job in JOBS:
            assert result_key(parallel[job]) == result_key(serial[job]), job
            np.testing.assert_array_equal(parallel[job].node_bitwidths,
                                          serial[job].node_bitwidths)

    def test_warm_replay_trains_zero_models(self, sweep_engine, tmp_path,
                                            monkeypatch):
        cold = sweep_engine.run(JOBS)
        replay_engine = SweepEngine(workers=0, cache_dir=tmp_path / "sweep-cache")

        def forbidden(job):
            raise AssertionError(f"warm replay trained a model: {job}")

        monkeypatch.setattr(engine_mod, "_execute_train_job", forbidden)
        warm = replay_engine.run(JOBS)
        assert replay_engine.executed_train_jobs == 0
        for job in JOBS:
            assert result_key(warm[job]) == result_key(cold[job])

    def test_sim_and_train_jobs_mix_in_one_batch(self, sweep_engine):
        from repro.eval.engine import SimJob

        sim = SimJob.from_call("gcnax", "cora", "gcn")
        results = sweep_engine.run([JOBS[0], sim])
        assert sweep_engine.executed_jobs == 2
        assert sweep_engine.executed_train_jobs == 1
        assert results[sim].total_cycles > 0
        assert 0.0 <= results[JOBS[0]].test_accuracy <= 1.0

    def test_fingerprint_tracks_job_recipe(self, sweep_engine):
        base = sweep_engine.job_fingerprint(JOBS[0])
        other_flow = sweep_engine.job_fingerprint(JOBS[2])
        other_seed = sweep_engine.job_fingerprint(JOBS[1])
        other_config = sweep_engine.job_fingerprint(
            TrainJob.from_call("cora", "gcn", "fp32",
                               config=TrainConfig(epochs=9), scale="tiny"))
        other_scale = sweep_engine.job_fingerprint(
            TrainJob.from_call("cora", "gcn", "fp32", config=QUICK,
                               scale="train"))
        assert len({base, other_flow, other_seed, other_config,
                    other_scale}) == 5


class TestAccuracyRunnersThroughEngine:
    CASES = (("cora", "gcn"),)

    def test_accuracy_comparison_warm_rerun_trains_zero(self, sweep_engine,
                                                        monkeypatch):
        cold = accuracy_comparison(cases=self.CASES, config=QUICK)
        from repro.eval.experiments import clear_caches

        clear_caches()  # drop engine memory; the disk store survives

        def forbidden(job):
            raise AssertionError(f"warm rerun trained a model: {job}")

        monkeypatch.setattr(engine_mod, "_execute_train_job", forbidden)
        warm = accuracy_comparison(cases=self.CASES, config=QUICK)
        assert warm == cold
        assert sweep_engine.executed_train_jobs == 0

    def test_accuracy_comparison_parallel_identical(self, sweep_engine,
                                                    tmp_path):
        serial = accuracy_comparison(cases=self.CASES, config=QUICK)
        parallel_engine = SweepEngine(workers=2,
                                      cache_dir=tmp_path / "par-cache")
        previous = engine_mod.set_engine(parallel_engine)
        try:
            parallel = accuracy_comparison(cases=self.CASES, config=QUICK)
        finally:
            engine_mod.set_engine(previous)
        assert parallel_engine.pool_used
        assert parallel == serial

    def test_dq_bitwidth_sweep_shares_fp32_with_comparison(self, sweep_engine):
        accuracy_comparison(cases=self.CASES, config=QUICK)
        trained = sweep_engine.executed_train_jobs
        sweep = dq_bitwidth_sweep(dataset="cora", model="gcn", bitwidths=(4,),
                                  config=QUICK)
        # fp32 and dq-int4 for (cora, gcn) already trained for Table VI.
        assert sweep_engine.executed_train_jobs == trained
        assert "fp32" in sweep and "4bit" in sweep

    def test_degree_feature_magnitudes_cached(self, sweep_engine):
        first = degree_feature_magnitudes(models=("gcn",), config=QUICK)
        trained = sweep_engine.executed_train_jobs
        second = degree_feature_magnitudes(models=("gcn",), config=QUICK)
        assert sweep_engine.executed_train_jobs == trained
        assert second == first
        assert len(first["gcn"]) > 0

    def test_accuracy_grid_shape_and_dedup(self, sweep_engine):
        grid = accuracy_grid(cases=self.CASES, flows=("fp32",), seeds=(0, 1),
                             config=QUICK)
        cell = grid["cora-gcn"]["fp32"]
        assert cell["runs"] == 2
        assert cell["std_accuracy"] >= 0.0
        # seeds already trained: a rerun adds nothing
        trained = sweep_engine.executed_train_jobs
        accuracy_grid(cases=self.CASES, flows=("fp32",), seeds=(0, 1),
                      config=QUICK)
        assert sweep_engine.executed_train_jobs == trained


class TestTrainMultipleSeedsDeclarative:
    def test_matches_legacy_path(self, sweep_engine):
        graph = cached_load_dataset("cora", scale="tiny")
        from repro.nn import train_multiple_seeds

        declarative = train_multiple_seeds("gcn", graph, seeds=[0, 1],
                                           config=QUICK)
        direct = train_multiple_seeds(
            lambda seed: build_model("gcn", graph.feature_dim,
                                     graph.num_classes, seed=seed),
            graph, seeds=[0, 1], config=QUICK)
        assert declarative["mean_accuracy"] == direct["mean_accuracy"]
        assert declarative["std_accuracy"] == direct["std_accuracy"]
        assert declarative["runs"] == direct["runs"] == 2

    def test_rejects_extra_loss_factory(self, sweep_engine):
        from repro.nn import train_multiple_seeds

        with pytest.raises(ValueError):
            train_multiple_seeds("gcn", "cora-tiny", seeds=[0],
                                 config=QUICK,
                                 extra_loss_factory=lambda model: None)


class TestEvaluateMasks:
    def test_matches_separate_evaluate_calls(self):
        graph = cached_load_dataset("cora", scale="tiny")
        model = build_model("gcn", graph.feature_dim, graph.num_classes,
                            seed=0)
        train(model, graph, TrainConfig(epochs=3, patience=100))
        together = evaluate_masks(model, graph,
                                  (graph.val_mask, graph.test_mask))
        separate = [evaluate(model, graph, graph.val_mask),
                    evaluate(model, graph, graph.test_mask)]
        assert together == separate

    def test_single_mask_matches_evaluate(self):
        graph = cached_load_dataset("cora", scale="tiny")
        model = build_model("gin", graph.feature_dim, graph.num_classes,
                            seed=0)
        assert (evaluate_masks(model, graph, (graph.test_mask,))[0]
                == evaluate(model, graph, graph.test_mask))
