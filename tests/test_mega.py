"""Tests for the MEGA accelerator: functional datapath, Condense-Edge,
configuration and the performance model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import load_dataset
from repro.graphs.partition import partition_graph
from repro.mega import (
    AREA_POWER_TABLE,
    CondenseUnit,
    MegaConfig,
    MegaModel,
    area_power_breakdown,
    bit_serial_matmul,
    choose_num_parts,
    condense_layout,
    count_cross_accesses,
    cpe_group_trace,
    decode_and_combine,
    mega_buffers,
    quantized_layer_forward,
)
from repro.sim.workload import build_workload


@pytest.fixture(scope="module")
def tiny():
    return load_dataset("cora", scale="tiny")


@pytest.fixture(scope="module")
def tiny_workload(tiny):
    return build_workload("cora", "gcn", "degree-aware", graph=tiny)


class TestBitSerial:
    def test_matches_integer_matmul(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 15, size=(10, 8))
        w = rng.integers(-7, 8, size=(8, 5))
        bits = np.full(10, 4)
        np.testing.assert_array_equal(bit_serial_matmul(x, w, bits), x @ w)

    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_property_bit_serial_exact(self, seed):
        rng = np.random.default_rng(seed)
        n, f_in, f_out = rng.integers(1, 12, size=3)
        bits = rng.choice([2, 3, 4, 8], size=n)
        x = np.stack([rng.integers(0, 2 ** b, size=f_in) for b in bits])
        w = rng.integers(-7, 8, size=(f_in, f_out))
        np.testing.assert_array_equal(bit_serial_matmul(x, w, bits), x @ w)

    def test_mixed_bitwidths(self):
        x = np.array([[3, 1], [255, 128]])
        w = np.array([[2], [1]])
        bits = np.array([2, 8])
        np.testing.assert_array_equal(bit_serial_matmul(x, w, bits), x @ w)

    def test_signed_magnitudes(self):
        x = np.array([[-3, 2]])
        w = np.array([[1], [4]])
        np.testing.assert_array_equal(
            bit_serial_matmul(x, w, np.array([4])), x @ w)


class TestCpeTrace:
    def test_fig11_example_output(self):
        values = np.array([2, 3])          # two non-zero 2-bit features
        weights = np.array([[1, 2], [3, 4]])
        trace = cpe_group_trace(values, weights, bitwidth=2)
        np.testing.assert_array_equal(trace["output"], values @ weights)

    def test_cycle_count_equals_bitwidth(self):
        trace = cpe_group_trace(np.array([5, 7]), np.array([[1, 1], [1, 1]]), 3)
        assert len(trace["cycles"]) == 3

    def test_shifts_increase(self):
        trace = cpe_group_trace(np.array([3]), np.array([[2, 2]]), 2)
        assert [c["shift"] for c in trace["cycles"]] == [0, 1]


class TestQuantizedLayer:
    def test_eq3_rescale_bounds_error(self, tiny):
        rng = np.random.default_rng(0)
        x = np.abs(rng.normal(size=(20, 16)))
        w = rng.normal(size=(16, 8))
        scales = np.full(20, x.max() / 255)
        bits = np.full(20, 8)
        wscales = np.abs(w).max(axis=0) / 7
        _, out = quantized_layer_forward(x, w, scales, bits, wscales, 4)
        rel = np.abs(out - x @ w).max() / np.abs(x @ w).max()
        assert rel < 0.2

    def test_aggregation_applied(self, tiny):
        rng = np.random.default_rng(1)
        x = np.abs(rng.normal(size=(tiny.num_nodes, 8)))
        w = rng.normal(size=(8, 4))
        scales = np.full(tiny.num_nodes, x.max() / 255)
        bits = np.full(tiny.num_nodes, 8)
        wscales = np.abs(w).max(axis=0) / 7
        adj = tiny.normalized_adjacency("gcn")
        _, out = quantized_layer_forward(x, w, scales, bits, wscales, 4,
                                         adjacency=adj)
        assert out.shape == (tiny.num_nodes, 4)

    def test_decode_and_combine_matches_direct(self):
        rng = np.random.default_rng(2)
        bits = rng.choice([2, 4, 8], size=12)
        x = np.stack([rng.integers(0, 2 ** b, size=6) for b in bits])
        w = rng.integers(-7, 8, size=(6, 3))
        np.testing.assert_array_equal(decode_and_combine(x, w, bits), x @ w)


class TestCondenseUnit:
    @pytest.fixture(scope="class")
    def parts_setup(self, request):
        graph = load_dataset("citeseer", scale="tiny")
        parts = partition_graph(graph.adjacency, 4, seed=0).parts
        return graph, parts

    def test_step_by_step_matches_vectorized(self, parts_setup):
        graph, parts = parts_setup
        unit = CondenseUnit(graph.adjacency, parts)
        buffer = unit.run()
        layout = condense_layout(graph.adjacency, parts)
        for p in layout:
            assert buffer[p] == layout[p].tolist()

    def test_all_eids_consumed(self, parts_setup):
        graph, parts = parts_setup
        unit = CondenseUnit(graph.adjacency, parts)
        unit.run()
        assert unit.remaining_eids() == 0

    def test_match_count_equals_unique_pairs(self, parts_setup):
        graph, parts = parts_setup
        unit = CondenseUnit(graph.adjacency, parts)
        unit.run()
        layout = condense_layout(graph.adjacency, parts)
        assert unit.matches == sum(len(v) for v in layout.values())

    def test_sparse_buffer_sorted_ascending(self, parts_setup):
        graph, parts = parts_setup
        buffer = CondenseUnit(graph.adjacency, parts).run()
        for nodes in buffer.values():
            assert nodes == sorted(nodes)

    def test_source_dedup_within_subgraph(self, parts_setup):
        graph, parts = parts_setup
        buffer = CondenseUnit(graph.adjacency, parts).run()
        for nodes in buffer.values():
            assert len(nodes) == len(set(nodes))

    def test_trace_accesses_condensed_fewer(self, parts_setup):
        graph, parts = parts_setup
        plain = count_cross_accesses(graph.adjacency, parts, 64, condensed=False)
        condensed = count_cross_accesses(graph.adjacency, parts, 64, condensed=True)
        assert condensed < plain


class TestConfig:
    def test_total_bses_paper_value(self):
        assert MegaConfig().total_bses == 4 * 8 * 32

    def test_buffer_total_392kb(self):
        assert MegaConfig().total_buffer_kb == 392.0
        assert mega_buffers().total_kb == 392.0

    def test_area_power_breakdown_totals(self):
        table = area_power_breakdown()
        assert table["total"]["area_mm2"] == pytest.approx(1.869, abs=0.01)
        assert table["total"]["power_mw"] == pytest.approx(194.98, abs=0.1)

    def test_buffers_dominate_area(self):
        table = area_power_breakdown()
        assert table["buffer_total"]["area_mm2"] > table["processing_total"]["area_mm2"]

    def test_choose_num_parts(self):
        # 128 KB buffer, 128-dim 16-bit partial sums -> 512 nodes/part.
        assert choose_num_parts(1024, 128, 128 * 1024) == 2


class TestMegaModel:
    def test_report_fields(self, tiny_workload):
        report = MegaModel().simulate(tiny_workload)
        assert report.total_cycles > 0
        assert report.compute_cycles > 0
        assert report.traffic.transferred_bytes > 0
        assert report.energy.total_pj > 0
        assert len(report.layer_costs) == 2

    def test_bitmap_storage_slower_or_equal(self, tiny_workload):
        full = MegaModel().simulate(tiny_workload)
        bitmap = MegaModel(storage="bitmap").simulate(tiny_workload)
        assert bitmap.compute_cycles >= full.compute_cycles
        assert bitmap.traffic.transferred_bytes >= full.traffic.transferred_bytes

    def test_condense_reduces_dram(self):
        workload = build_workload("cora", "gcn", "degree-aware")
        with_c = MegaModel(condense=True).simulate(workload)
        without = MegaModel(condense=False).simulate(workload)
        assert with_c.traffic.transferred_bytes <= without.traffic.transferred_bytes

    def test_invalid_storage_raises(self):
        with pytest.raises(ValueError):
            MegaModel(storage="zip")

    def test_quantized_beats_fp32_traffic(self, tiny):
        mixed = build_workload("cora", "gcn", "degree-aware", graph=tiny)
        flat8 = build_workload("cora", "gcn", "int8", graph=tiny)
        r_mixed = MegaModel().simulate(mixed)
        r_8 = MegaModel().simulate(flat8)
        assert r_mixed.traffic.transferred_bytes < r_8.traffic.transferred_bytes

    def test_stall_fraction_bounded(self, tiny_workload):
        report = MegaModel().simulate(tiny_workload)
        assert 0.0 <= report.stall_fraction < 1.0

    def test_speedup_helpers(self, tiny_workload):
        a = MegaModel().simulate(tiny_workload)
        b = MegaModel(storage="bitmap").simulate(tiny_workload)
        assert a.speedup_over(b) >= 1.0
        assert b.speedup_over(a) <= 1.0
