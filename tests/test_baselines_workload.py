"""Tests for the baseline accelerator models and workload builders."""

import numpy as np
import pytest

from repro.baselines import BASELINE_PRESETS, BaselineConfig, build_baseline
from repro.graphs import load_dataset
from repro.mega import MegaModel
from repro.sim.workload import (
    PAPER_AVERAGE_BITS,
    build_workload,
    synthesize_degree_aware_bits,
    workload_from_quant_run,
)


@pytest.fixture(scope="module")
def tiny():
    return load_dataset("cora", scale="tiny")


@pytest.fixture(scope="module")
def wl32(tiny):
    return build_workload("cora", "gcn", "fp32", graph=tiny)


@pytest.fixture(scope="module")
def wl_mixed(tiny):
    return build_workload("cora", "gcn", "degree-aware", graph=tiny)


class TestWorkloadBuilder:
    def test_two_layers(self, wl32):
        assert len(wl32.layers) == 2
        assert wl32.layers[0].out_dim == 128
        assert wl32.layers[1].in_dim == 128

    def test_fp32_bits(self, wl32):
        assert (wl32.layers[0].input_bits == 32).all()
        assert wl32.compression_ratio() == pytest.approx(1.0)

    def test_int8_bits(self, tiny):
        wl = build_workload("cora", "gcn", "int8", graph=tiny)
        assert (wl.layers[0].input_bits == 8).all()
        assert wl.compression_ratio() == pytest.approx(4.0)

    def test_degree_aware_bits_in_range(self, wl_mixed):
        bits = wl_mixed.layers[0].input_bits
        assert bits.min() >= 2 and bits.max() <= 8

    def test_degree_aware_cr_above_8bit(self, wl_mixed):
        assert wl_mixed.compression_ratio() > 4.0

    def test_unknown_precision_raises(self, tiny):
        with pytest.raises(ValueError):
            build_workload("cora", "gcn", "fp16", graph=tiny)

    def test_graphsage_sampling_caps_edges(self):
        g = load_dataset("reddit", scale="tiny")
        wl = build_workload("reddit", "graphsage", "fp32", graph=g)
        degrees = np.asarray(wl.adjacency.astype(bool).sum(axis=1)).reshape(-1)
        assert degrees.max() <= 25

    def test_workload_from_quant_run(self, tiny):
        bits = np.full(tiny.num_nodes, 3, dtype=np.int64)
        wl = workload_from_quant_run(tiny, "gcn", bits)
        assert wl.layers[0].in_dim == tiny.feature_dim
        assert (wl.layers[0].input_bits == 3).all()


class TestSynthesizedBits:
    def test_average_close_to_target(self):
        degrees = np.random.default_rng(0).integers(1, 100, size=5000)
        bits = synthesize_degree_aware_bits(degrees, 3.0)
        assert bits.mean() == pytest.approx(3.0, abs=0.4)

    def test_monotone_in_degree(self):
        degrees = np.arange(1, 1001)
        bits = synthesize_degree_aware_bits(degrees, 3.0)
        assert (np.diff(bits) >= 0).all()

    def test_power_law_majority_at_min(self):
        degrees = np.random.default_rng(0).integers(1, 100, size=5000)
        bits = synthesize_degree_aware_bits(degrees, 2.5)
        assert (bits == 2).mean() > 0.5

    def test_target_at_min_all_min(self):
        bits = synthesize_degree_aware_bits(np.arange(1, 100), 2.0)
        assert (bits == 2).all()


class TestBaselinePresets:
    def test_all_presets_instantiate(self):
        for name in BASELINE_PRESETS:
            model = build_baseline(name)
            assert model.name == name

    def test_unknown_baseline_raises(self):
        with pytest.raises(ValueError):
            build_baseline("tpu")

    def test_table5_properties(self):
        assert BASELINE_PRESETS["hygcn"].execution_order == "AXW"
        assert not BASELINE_PRESETS["hygcn"].sparsity_combination
        assert BASELINE_PRESETS["grow"].locality == "metis"
        assert BASELINE_PRESETS["sgcn"].storage == "sgcn"

    def test_8bit_variants(self):
        assert BASELINE_PRESETS["hygcn-8bit"].feature_bits == 8
        assert BASELINE_PRESETS["gcnax-8bit"].feature_bits == 8

    def test_original_configs_table7(self):
        assert BASELINE_PRESETS["gcnax-original"].total_buffer_kb == 580.0
        assert BASELINE_PRESETS["grow-original"].total_buffer_kb == 538.0


class TestBaselineBehavior:
    def test_mega_fastest(self, wl32, wl_mixed):
        mega = MegaModel().simulate(wl_mixed)
        for name in ("hygcn", "gcnax", "grow", "sgcn"):
            base = build_baseline(name).simulate(wl32)
            assert base.total_cycles > mega.total_cycles, name

    def test_mega_least_dram(self, wl32, wl_mixed):
        mega = MegaModel().simulate(wl_mixed)
        for name in ("hygcn", "gcnax", "grow", "sgcn"):
            base = build_baseline(name).simulate(wl32)
            assert base.traffic.transferred_bytes > mega.traffic.transferred_bytes

    def test_hygcn_has_most_dram(self, wl32):
        reports = {name: build_baseline(name).simulate(wl32)
                   for name in ("hygcn", "gcnax", "grow", "sgcn")}
        hygcn = reports.pop("hygcn")
        for name, rep in reports.items():
            assert hygcn.traffic.transferred_bytes > rep.traffic.transferred_bytes

    def test_axw_order_costs_more_macs(self, wl32):
        hygcn = build_baseline("hygcn").simulate(wl32)
        hygcn_c = build_baseline("hygcn-c").simulate(wl32)
        macs = lambda r: sum(c.details["macs"] for c in r.layer_costs)
        assert macs(hygcn) > macs(hygcn_c)

    def test_8bit_less_traffic_than_fp32(self, tiny, wl32):
        wl8 = build_workload("cora", "gcn", "int8", graph=tiny)
        fp = build_baseline("gcnax").simulate(wl32)
        int8 = build_baseline("gcnax-8bit").simulate(wl8)
        assert int8.traffic.transferred_bytes < fp.traffic.transferred_bytes

    def test_original_config_slower_than_matched(self, wl32):
        matched = build_baseline("gcnax").simulate(wl32)
        original = build_baseline("gcnax-original").simulate(wl32)
        assert original.total_cycles >= matched.total_cycles

    def test_grow_dram_leq_gcnax(self, wl32):
        gcnax = build_baseline("gcnax").simulate(wl32)
        grow = build_baseline("grow").simulate(wl32)
        assert grow.traffic.transferred_bytes <= gcnax.traffic.transferred_bytes

    def test_invalid_storage_raises(self, wl32):
        from repro.baselines import GenericAcceleratorModel

        cfg = BaselineConfig(name="bad", storage="tar")
        with pytest.raises(ValueError):
            GenericAcceleratorModel(cfg).simulate(wl32)
