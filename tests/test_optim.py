"""Optimizer tests: convergence on convex problems + bookkeeping."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor.optim import SGD, Adam, Optimizer, clip_grad_norm


def quadratic_step(param):
    loss = ((param - 3.0) ** 2).sum()
    loss.backward()
    return float(loss.data)


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_step(p)
            opt.step()
        np.testing.assert_allclose(p.data, 3 * np.ones(4), atol=1e-3)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                loss = quadratic_step(p)
                opt.step()
            losses[momentum] = loss
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_gradless_params(self):
        p = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
        SGD([p], lr=0.1).step()  # no grad accumulated: no-op
        assert p.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            quadratic_step(p)
            opt.step()
        np.testing.assert_allclose(p.data, 3 * np.ones(4), atol=1e-2)

    def test_step_size_bounded_by_lr(self):
        p = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        quadratic_step(p)
        opt.step()
        # Adam's first step is ~lr regardless of gradient magnitude.
        assert abs(p.data[0]) <= 0.011

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_only_trainable_params_kept(self):
        a = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(1, dtype=np.float32), requires_grad=False)
        opt = Adam([a, b], lr=0.1)
        assert len(opt.params) == 1


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        p.grad = np.full(4, 10.0, dtype=np.float32)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_below_threshold(self):
        p = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        p.grad = np.array([0.1, 0.1], dtype=np.float32)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])

    def test_ignores_missing_grads(self):
        p = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        assert clip_grad_norm([p], 1.0) == 0.0

    def test_scales_in_place(self):
        p = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        p.grad = np.full(4, 10.0, dtype=np.float32)
        before = p.grad
        clip_grad_norm([p], max_norm=1.0)
        assert p.grad is before  # scaled in place, no new allocation

    def test_aliased_grads_not_double_scaled(self):
        # A same-shape add hands the identical upstream grad array to
        # both parents; clipping must not scale that shared buffer twice.
        w1 = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        w2 = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        ((w1 + w2) * 10.0).sum().backward()
        assert w1.grad is w2.grad  # the aliasing scenario under test
        clip_grad_norm([w1, w2], max_norm=1.0)
        expected = 10.0 / np.sqrt(2 * 3 * 10.0 ** 2)
        np.testing.assert_allclose(w1.grad, expected, rtol=1e-6)
        np.testing.assert_allclose(w2.grad, expected, rtol=1e-6)


def _random_params(seed, weight_decay_shapes=((64, 32), (32,), (7, 5))):
    rng = np.random.default_rng(seed)
    params = []
    for shape in weight_decay_shapes:
        p = Tensor(rng.standard_normal(shape).astype(np.float32),
                   requires_grad=True)
        params.append(p)
    return params


def _clone_params(params):
    clones = []
    for p in params:
        q = Tensor(p.data.copy(), requires_grad=True)
        clones.append(q)
    return clones


def _assign_grads(params, rng, scale=1.0):
    for p in params:
        p.grad = (scale * rng.standard_normal(p.data.shape)).astype(np.float32)


class TestBitIdentityWithReference:
    """The in-place steps must match the seed (allocating) optimizers
    bit for bit — the sweep cache's determinism guarantee rests on it."""

    @pytest.mark.parametrize("weight_decay", [0.0, 5e-4])
    def test_adam_steps_bit_identical(self, weight_decay):
        from repro.perf.reference import AdamReference

        fast_params = _random_params(0)
        ref_params = _clone_params(fast_params)
        fast = Adam(fast_params, lr=0.01, weight_decay=weight_decay)
        ref = AdamReference(ref_params, lr=0.01, weight_decay=weight_decay)
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        for step in range(25):
            _assign_grads(fast_params, rng_a)
            _assign_grads(ref_params, rng_b)
            fast.step()
            ref.step()
            for f, r in zip(fast_params, ref_params):
                np.testing.assert_array_equal(f.data, r.data,
                                              err_msg=f"step {step}")

    @pytest.mark.parametrize("momentum,weight_decay",
                             [(0.0, 0.0), (0.9, 0.0), (0.9, 1e-3)])
    def test_sgd_steps_bit_identical(self, momentum, weight_decay):
        from repro.perf.reference import SGDReference

        fast_params = _random_params(2)
        ref_params = _clone_params(fast_params)
        fast = SGD(fast_params, lr=0.05, momentum=momentum,
                   weight_decay=weight_decay)
        ref = SGDReference(ref_params, lr=0.05, momentum=momentum,
                           weight_decay=weight_decay)
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        for step in range(25):
            _assign_grads(fast_params, rng_a)
            _assign_grads(ref_params, rng_b)
            fast.step()
            ref.step()
            for f, r in zip(fast_params, ref_params):
                np.testing.assert_array_equal(f.data, r.data,
                                              err_msg=f"step {step}")

    @pytest.mark.parametrize("scale", [0.01, 1.0, 100.0])
    def test_clip_bit_identical(self, scale):
        from repro.perf.reference import clip_grad_norm_reference

        fast_params = _random_params(4)
        ref_params = _clone_params(fast_params)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        _assign_grads(fast_params, rng_a, scale=scale)
        _assign_grads(ref_params, rng_b, scale=scale)
        fast_norm = clip_grad_norm(fast_params, 5.0)
        ref_norm = clip_grad_norm_reference(ref_params, 5.0)
        assert fast_norm == ref_norm
        for f, r in zip(fast_params, ref_params):
            np.testing.assert_array_equal(f.grad, r.grad)

    def test_adam_skips_gradless_params_like_reference(self):
        from repro.perf.reference import AdamReference

        fast_params = _random_params(6)
        ref_params = _clone_params(fast_params)
        fast = Adam(fast_params, lr=0.01)
        ref = AdamReference(ref_params, lr=0.01)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        _assign_grads(fast_params, rng_a)
        _assign_grads(ref_params, rng_b)
        fast_params[1].grad = None
        ref_params[1].grad = None
        fast.step()
        ref.step()
        for f, r in zip(fast_params, ref_params):
            np.testing.assert_array_equal(f.data, r.data)
