"""Optimizer tests: convergence on convex problems + bookkeeping."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor.optim import SGD, Adam, Optimizer, clip_grad_norm


def quadratic_step(param):
    loss = ((param - 3.0) ** 2).sum()
    loss.backward()
    return float(loss.data)


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_step(p)
            opt.step()
        np.testing.assert_allclose(p.data, 3 * np.ones(4), atol=1e-3)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                loss = quadratic_step(p)
                opt.step()
            losses[momentum] = loss
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_gradless_params(self):
        p = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
        SGD([p], lr=0.1).step()  # no grad accumulated: no-op
        assert p.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            quadratic_step(p)
            opt.step()
        np.testing.assert_allclose(p.data, 3 * np.ones(4), atol=1e-2)

    def test_step_size_bounded_by_lr(self):
        p = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        quadratic_step(p)
        opt.step()
        # Adam's first step is ~lr regardless of gradient magnitude.
        assert abs(p.data[0]) <= 0.011

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_only_trainable_params_kept(self):
        a = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(1, dtype=np.float32), requires_grad=False)
        opt = Adam([a, b], lr=0.1)
        assert len(opt.params) == 1


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        p.grad = np.full(4, 10.0, dtype=np.float32)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_below_threshold(self):
        p = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        p.grad = np.array([0.1, 0.1], dtype=np.float32)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])

    def test_ignores_missing_grads(self):
        p = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        assert clip_grad_norm([p], 1.0) == 0.0
