"""Shared pytest configuration: the ``slow`` marker and sweep isolation."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running end-to-end experiments")


@pytest.fixture(autouse=True, scope="session")
def _hermetic_sweep_cache(tmp_path_factory):
    """Point the sweep engine's disk store at a session tmp dir.

    Tests share one warm store for the whole session (the designed
    cross-runner behavior) but never read or grow the user's real
    ``~/.cache/repro``.
    """
    from repro.eval.engine import temporary_cache_dir

    with temporary_cache_dir(tmp_path_factory.mktemp("sweep-cache")):
        yield


@pytest.fixture
def sweep_engine(tmp_path):
    """A fresh, isolated SweepEngine installed as the process default.

    Swaps in an engine whose disk store lives under the test's tmp dir
    and clears every sweep-related cache on entry and exit
    (``repro.eval.experiments.clear_caches``), so sweep state can never
    leak between tests or into the user's real on-disk cache.
    """
    from repro.eval import engine as engine_mod
    from repro.eval.experiments import clear_caches

    fresh = engine_mod.SweepEngine(workers=0, cache_dir=tmp_path / "sweep-cache")
    previous = engine_mod.set_engine(fresh)
    clear_caches()
    try:
        yield fresh
    finally:
        engine_mod.set_engine(previous)
        clear_caches()
