"""Tests for the experiment harness (structure + paper-shape assertions)."""

import numpy as np
import pytest

from repro.eval import (
    ablation_fig19,
    cr_sensitivity,
    energy_breakdown_fig18,
    format_table,
    geomean,
    locality_study,
    normalize_to,
    original_config_comparison,
    package_length_study,
    simulate,
    speedup_table,
    stall_table,
)

WORKLOADS = (("cora", "gcn"), ("citeseer", "gcn"))


class TestReporting:
    def test_geomean_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_geomean_empty_nan(self):
        assert np.isnan(geomean([]))

    def test_format_table_aligns(self):
        txt = format_table([[1.0, "a"], [2.0, "bb"]], ["x", "y"])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1

    def test_normalize_to(self):
        rows = {"r": {"a": 2.0, "b": 4.0}}
        out = normalize_to(rows, "a")
        assert out["r"]["b"] == pytest.approx(0.5)


class TestTables:
    def test_speedup_table_mega_wins(self):
        table = speedup_table(workloads=WORKLOADS,
                              accelerators=("hygcn", "gcnax"))
        for row_key, row in table.items():
            for name, speedup in row.items():
                assert speedup > 1.0, (row_key, name)

    def test_geomean_row_present(self):
        table = speedup_table(workloads=WORKLOADS,
                              accelerators=("gcnax",))
        assert "geomean" in table

    def test_stall_ordering(self):
        """Fig. 20(a): MEGA stalls less than HyGCN."""
        table = stall_table(datasets=("cora",))
        assert table["cora"]["mega"] <= table["cora"]["hygcn"]

    def test_simulate_memoized(self):
        a = simulate("gcnax", "cora", "gcn")
        b = simulate("gcnax", "cora", "gcn")
        assert a is b


class TestAblation:
    def test_fig19_ordering(self):
        steps = ablation_fig19("cora", "gcn")
        cycles = [steps[k].total_cycles for k in
                  ("hygcn-c", "quant+bitmap", "+adaptive-package", "+condense-edge")]
        # Each technique may only help (or be neutral).
        assert cycles[0] > cycles[1] >= cycles[2] >= cycles[3]
        dram = [steps[k].traffic.transferred_bytes for k in
                ("hygcn-c", "quant+bitmap", "+adaptive-package", "+condense-edge")]
        assert dram[0] > dram[1] >= dram[2] >= dram[3]


class TestStudies:
    def test_locality_study_ordering(self):
        """Fig. 6 / 20(b): condense has the least sparse-connection DRAM."""
        out = locality_study("cora")
        assert out["condense"]["cross_mb"] <= out["gcod"]["cross_mb"]
        assert out["gcod"]["cross_mb"] <= out["metis"]["cross_mb"]
        assert set(out) == {"naive", "metis", "gcod", "condense"}

    def test_package_length_study_normalized(self):
        out = package_length_study(datasets=("cora",))
        values = list(out["cora"].values())
        assert min(values) == pytest.approx(1.0)
        assert all(v >= 1.0 for v in values)

    def test_cr_sensitivity_monotone(self):
        """Fig. 22: speedup grows with compression ratio."""
        out = cr_sensitivity("cora", models=("gcn",), targets=(8.0, 4.0, 2.5))
        speedups = list(out["gcn"].values())
        assert speedups[-1] >= speedups[0]

    def test_original_config_mega_wins(self):
        out = original_config_comparison(datasets=("cora",))
        assert out["cora"]["mega"] > out["cora"]["grow"] >= 0.5
        assert out["cora"]["gcnax"] == 1.0

    def test_energy_breakdown_hygcn_dominated_by_dram(self):
        out = energy_breakdown_fig18(datasets=("cora",))
        assert out["cora"]["hygcn"]["dram"] > 1.0
