"""Tests for the sweep engine: parallel/serial identity, disk cache
round trips, and content-keyed invalidation."""

import warnings

import pytest

from repro import envutil
from repro.eval.engine import SimJob, SweepEngine, get_engine
from repro.eval.experiments import clear_caches, simulate
from repro.perf.cache import DiskCache, cached_load_dataset, content_key
from repro.sim.accelerator import SimReport
from repro.sim.workload import build_workload

JOBS = [SimJob.from_call(name, dataset, "gcn")
        for dataset in ("cora", "citeseer")
        for name in ("hygcn", "gcnax", "mega")]


class TestSimJob:
    def test_precision_pairing(self):
        assert SimJob.from_call("mega", "cora", "gcn").precision == "degree-aware"
        assert SimJob.from_call("hygcn-8bit", "cora", "gcn").precision == "int8"
        assert SimJob.from_call("hygcn", "cora", "gcn").precision == "fp32"

    def test_variant_kwargs_sorted_and_hashable(self):
        a = SimJob.from_call("mega", "cora", "gcn",
                             {"storage": "bitmap", "condense": False})
        b = SimJob.from_call("mega", "cora", "gcn",
                             {"condense": False, "storage": "bitmap"})
        assert a == b and hash(a) == hash(b)
        assert a.variant_label == "condense=False+storage=bitmap"

    def test_variant_on_baseline_rejected(self, sweep_engine):
        job = SimJob.from_call("hygcn", "cora", "gcn", {"condense": False})
        with pytest.raises(ValueError):
            sweep_engine.run([job])


class TestSweepEngine:
    def test_matches_pre_engine_direct_path(self, sweep_engine):
        """Engine results are bit-identical to directly-built models."""
        from repro.baselines import build_baseline
        from repro.mega import MegaModel

        graph = cached_load_dataset("cora", scale="sim")
        direct_base = build_baseline("gcnax").simulate(
            build_workload("cora", "gcn", "fp32", graph=graph))
        direct_mega = MegaModel().simulate(
            build_workload("cora", "gcn", "degree-aware", graph=graph))
        assert simulate("gcnax", "cora", "gcn") == direct_base
        assert simulate("mega", "cora", "gcn") == direct_mega

    def test_batch_deduplicates(self, sweep_engine):
        job = JOBS[0]
        reports = sweep_engine.run([job, job, job])
        assert sweep_engine.executed_jobs == 1
        assert isinstance(reports[job], SimReport)

    def test_parallel_identical_to_serial(self, sweep_engine, tmp_path):
        serial = sweep_engine.run(JOBS)
        parallel_engine = SweepEngine(workers=2,
                                      cache_dir=tmp_path / "parallel-cache")
        parallel = parallel_engine.run(JOBS)
        assert parallel_engine.executed_jobs == len(JOBS)
        assert parallel_engine.pool_used
        assert not sweep_engine.pool_used
        for job in JOBS:
            assert parallel[job] == serial[job], job

    def test_disk_cache_hit_returns_equal_report(self, sweep_engine, tmp_path):
        job = SimJob.from_call("gcnax", "cora", "gcn")
        cold = sweep_engine.run([job])[job]
        # A brand-new engine over the same store must replay from disk.
        replay_engine = SweepEngine(workers=0, cache_dir=tmp_path / "sweep-cache")
        warm = replay_engine.run([job])[job]
        assert replay_engine.executed_jobs == 0
        assert warm == cold
        assert warm is not cold  # unpickled, not the same object

    def test_memory_cache_returns_same_object(self, sweep_engine):
        a = simulate("gcnax", "cora", "gcn")
        b = simulate("gcnax", "cora", "gcn")
        assert a is b

    def test_failed_job_keeps_completed_work(self, sweep_engine, tmp_path):
        good = SimJob.from_call("gcnax", "cora", "gcn")
        bad = SimJob.from_call("gcnax", "citeseer", "gcn", {"condense": False})
        with pytest.raises(ValueError):
            sweep_engine.run([good, bad])
        # the good job was persisted before the failure surfaced
        replay = SweepEngine(workers=0, cache_dir=tmp_path / "sweep-cache")
        replay.run([good])
        assert replay.executed_jobs == 0

    def test_parallel_failed_chunk_keeps_other_chunks(self, sweep_engine, tmp_path):
        good = SimJob.from_call("gcnax", "cora", "gcn")
        bad = SimJob.from_call("gcnax", "citeseer", "gcn", {"condense": False})
        parallel_engine = SweepEngine(workers=2, cache_dir=tmp_path / "par-cache")
        with pytest.raises(ValueError):
            parallel_engine.run([good, bad])
        replay = SweepEngine(workers=0, cache_dir=tmp_path / "par-cache")
        replay.run([good])
        assert replay.executed_jobs == 0

    def test_workload_honors_every_precision(self, sweep_engine):
        """Non-standard precisions build real workloads, never fp32 proxies."""
        wl = sweep_engine.workload("cora", "gcn", "uniform-int8")
        assert wl.precision == "uniform-int8"
        assert (wl.layers[0].input_bits == 8).all()
        assert wl.layers[0].weight_bits == 8
        with pytest.raises(ValueError):
            sweep_engine.workload("cora", "gcn", "float16")

    def test_workload_disk_round_trip(self, sweep_engine, tmp_path):
        wl = sweep_engine.workload("cora", "gcn", "degree-aware")
        replay_engine = SweepEngine(workers=0, cache_dir=tmp_path / "sweep-cache")
        wl2 = replay_engine.workload("cora", "gcn", "degree-aware")
        assert wl2.name == wl.name
        assert (wl2.adjacency != wl.adjacency).nnz == 0
        for l2, l1 in zip(wl2.layers, wl.layers):
            assert (l2.input_bits == l1.input_bits).all()
            assert (l2.input_nnz == l1.input_nnz).all()


class TestCacheInvalidation:
    def test_fingerprint_stable(self, sweep_engine):
        job = SimJob.from_call("mega", "cora", "gcn")
        assert sweep_engine.job_fingerprint(job) == sweep_engine.job_fingerprint(job)

    def test_fingerprint_tracks_accelerator_config(self, sweep_engine):
        base = sweep_engine.job_fingerprint(SimJob.from_call("mega", "cora", "gcn"))
        ablated = sweep_engine.job_fingerprint(
            SimJob.from_call("mega", "cora", "gcn", {"condense": False}))
        other_acc = sweep_engine.job_fingerprint(
            SimJob.from_call("hygcn", "cora", "gcn"))
        target = sweep_engine.job_fingerprint(
            SimJob.from_call("mega", "cora", "gcn", target_average_bits=4.0))
        assert len({base, ablated, other_acc, target}) == 4

    def test_fingerprint_tracks_graph_content(self, sweep_engine):
        same = SimJob.from_call("mega", "cora", "gcn")
        other_dataset = SimJob.from_call("mega", "citeseer", "gcn")
        other_seed = SimJob.from_call("mega", "cora", "gcn", seed=1)
        fps = {sweep_engine.job_fingerprint(j)
               for j in (same, other_dataset, other_seed)}
        assert len(fps) == 3
        assert (sweep_engine.dataset_fingerprint("cora")
                != sweep_engine.dataset_fingerprint("cora", seed=1))

    def test_clear_caches_resets_engine_state(self, sweep_engine):
        simulate("gcnax", "cora", "gcn")
        assert sweep_engine.executed_jobs == 1
        clear_caches()
        assert sweep_engine.executed_jobs == 0
        assert len(sweep_engine.reports) == 0
        # Disk survives a memory clear: the rerun replays, not recomputes.
        simulate("gcnax", "cora", "gcn")
        assert sweep_engine.executed_jobs == 0


class TestDiskCache:
    def test_round_trip_and_stats(self, tmp_path):
        cache = DiskCache("unit", directory=tmp_path)
        key = content_key("a", 1, (2, 3))
        assert cache.get(key) is None
        cache.put(key, {"x": 1.5})
        assert cache.get(key) == {"x": 1.5}
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["hits"] == 1
        assert stats["misses"] == 1 and stats["stores"] == 1

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache = DiskCache("unit", directory=tmp_path)
        key = content_key("broken")
        cache.put(key, [1, 2, 3])
        cache._path(key).write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.get_or_compute(key,
                                        lambda: "recomputed") == "recomputed"
        assert cache.get(key) == "recomputed"

    def test_stale_namespace_pruned_on_store(self, tmp_path):
        old = DiskCache("unit", directory=tmp_path, namespace="oldver")
        old.put(content_key("k"), "stale")
        new = DiskCache("unit", directory=tmp_path, namespace="newver")
        assert new.get(content_key("k")) is None  # namespaces are disjoint
        new.put(content_key("k"), "fresh")
        assert not old.directory.exists()  # previous version pruned
        assert new.get(content_key("k")) == "fresh"

    def test_unpicklable_value_skipped_without_disabling(self, tmp_path):
        cache = DiskCache("unit", directory=tmp_path)
        cache.put(content_key("bad"), lambda: None)  # not picklable
        assert cache.get(content_key("bad")) is None
        cache.put(content_key("good"), 7)  # store must still be active
        assert cache.get(content_key("good")) == 7
        assert not list(cache.directory.glob("*.tmp.*"))  # no leaked tmp files

    def test_unwritable_store_degrades_gracefully(self, tmp_path):
        target = tmp_path / "file-not-dir"
        target.write_text("occupied")
        cache = DiskCache("unit", directory=target / "nested")
        cache.put(content_key("k"), 1)  # cannot mkdir below a file
        assert cache.get(content_key("k")) is None
        assert cache.get_or_compute(content_key("k"), lambda: 41 + 1) == 42
        # Both puts (direct + get_or_compute's) failed and were counted.
        assert cache.stats()["write_failures"] == 2

    def test_checksum_footer_detects_truncated_write(self, tmp_path):
        """Pickle ignores trailing bytes after the STOP opcode, so a torn
        write truncated inside the footer region still unpickles — the
        checksum footer is what catches it."""
        import pickle

        cache = DiskCache("unit", directory=tmp_path)
        key = content_key("torn")
        cache.put(key, {"rows": list(range(50))})
        path = cache._path(key)
        data = path.read_bytes()
        truncated = data[:-7]  # lose the footer's tail, keep the payload
        path.write_bytes(truncated)
        # The raw payload inside the truncated file is still loadable
        # pickle — without the checksum this would be served as a hit.
        from repro.perf.cache import _CHECKSUM_MAGIC

        assert pickle.loads(truncated[len(_CHECKSUM_MAGIC):]) \
            == {"rows": list(range(50))}
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.get(key) is None
        assert cache.stats()["corrupt_drops"] == 1
        assert not path.exists()  # dropped, so the next run recomputes

    def test_corrupt_entries_warn_once_but_count_each(self, tmp_path):
        import warnings as warnings_mod

        cache = DiskCache("unit", directory=tmp_path)
        for i in range(3):
            cache.put(content_key("e", i), i)
            cache._path(content_key("e", i)).write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.get(content_key("e", 0)) is None
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert cache.get(content_key("e", 1)) is None
            assert cache.get(content_key("e", 2)) is None
        assert cache.stats()["corrupt_drops"] == 3

    def test_checksum_off_round_trips_plain_pickle(self, tmp_path):
        cache = DiskCache("unit", directory=tmp_path, checksum=False)
        key = content_key("plain")
        cache.put(key, (1, 2))
        assert cache.get(key) == (1, 2)
        import pickle

        assert pickle.loads(cache._path(key).read_bytes()) == (1, 2)

    def test_stats_carry_robustness_counters(self, tmp_path):
        cache = DiskCache("unit", directory=tmp_path)
        assert set(cache.stats()) == {"entries", "size_bytes", "hits",
                                      "misses", "stores", "corrupt_drops",
                                      "write_failures", "io_errors",
                                      "dangling_stubs"}

    def test_stats_size_bytes_tracks_entries(self, tmp_path):
        cache = DiskCache("unit", directory=tmp_path)
        assert cache.stats()["size_bytes"] == 0
        cache.put(content_key("a"), list(range(100)))
        size_one = cache.stats()["size_bytes"]
        assert size_one > 0
        cache.put(content_key("b"), list(range(100)))
        assert cache.stats()["size_bytes"] > size_one


class TestCacheRaces:
    """Concurrent-writer and mid-sweep degradation races."""

    def test_concurrent_writers_same_key(self, tmp_path):
        """Two processes storing the same key concurrently: the survivor
        is one complete entry, never a torn interleaving."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        ctx = multiprocessing.get_context("fork")
        key = content_key("contested")

        def writer(value):
            cache = DiskCache("unit", directory=tmp_path)
            for _ in range(25):
                cache.put(key, value)

        procs = [ctx.Process(target=writer, args=(["a"] * 100,)),
                 ctx.Process(target=writer, args=(["b"] * 100,))]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
        assert all(proc.exitcode == 0 for proc in procs)
        reader = DiskCache("unit", directory=tmp_path)
        value = reader.get(key)
        assert value in (["a"] * 100, ["b"] * 100)
        assert reader.stats()["corrupt_drops"] == 0
        assert not list(reader.directory.glob("*.tmp.*"))

    def test_reader_hitting_half_replaced_entry(self, tmp_path):
        """A reader that catches a partially-written entry (torn short
        of the checksum) treats it as corrupt, not as a result."""
        cache = DiskCache("unit", directory=tmp_path)
        key = content_key("half")
        cache.put(key, list(range(100)))
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.get_or_compute(key, lambda: "fresh") == "fresh"
        assert cache.get(key) == "fresh"

    def test_readonly_cache_dir_mid_sweep_degrades_once(self, tmp_path):
        """A store that turns read-only mid-sweep (injected: the test
        runs as root, where chmod cannot produce EACCES) warns exactly
        once and keeps the sweep running memory-only."""
        import warnings as warnings_mod

        from repro.faults import inject_faults

        cache = DiskCache("unit", directory=tmp_path)
        cache.put(content_key("before"), 1)  # store starts healthy
        with inject_faults(cache_readonly=1.0):
            with pytest.warns(RuntimeWarning, match="memory-only"):
                cache.put(content_key("during", 0), 2)
            with warnings_mod.catch_warnings():
                warnings_mod.simplefilter("error")
                cache.put(content_key("during", 1), 3)  # silent no-op
        assert cache.get(content_key("before")) == 1  # reads still serve
        assert cache.get(content_key("during", 0)) is None
        assert cache._write_disabled
        # Only the latching put counts; later puts are skipped outright.
        assert cache.stats()["write_failures"] == 1


class TestChunkSplitting:
    """Oversized scenarios chunk per job so one huge dataset fans out."""

    def test_small_scenarios_chunk_per_dataset(self):
        from repro.eval.engine import _chunk_key

        jobs = [SimJob.from_call(acc, "powerlaw-10k", "gcn")
                for acc in ("mega", "gcnax")]
        keys = {_chunk_key(job) for job in jobs}
        assert keys == {("powerlaw-10k", 0)}

    def test_huge_scenarios_chunk_per_job(self):
        from repro.eval.engine import _chunk_key

        jobs = [SimJob.from_call(acc, "powerlaw-500k", "gcn")
                for acc in ("mega", "gcnax")]
        keys = {_chunk_key(job) for job in jobs}
        assert keys == set(jobs)

    def test_threshold_env_knob(self, monkeypatch):
        from repro.eval.engine import _chunk_key

        job = SimJob.from_call("mega", "powerlaw-10k", "gcn")
        monkeypatch.setenv("REPRO_CHUNK_SPLIT_NODES", "5000")
        assert _chunk_key(job) == job
        monkeypatch.setenv("REPRO_CHUNK_SPLIT_NODES", "not-a-number")
        assert _chunk_key(job) == ("powerlaw-10k", 0)

    def test_paper_datasets_carry_size_hints(self):
        from repro.registry import get_dataset

        assert get_dataset("cora").size_hint == 2708
        assert get_dataset("powerlaw-500k").size_hint == 500_000
        assert get_dataset("reddit").size_hint > 0


class TestSupervisionPolicy:
    """Engine-level retry/timeout/degrade plumbing (the chaos suite in
    ``test_chaos.py`` exercises the full fault matrix)."""

    def test_policy_defaults_come_from_env(self, tmp_path, monkeypatch):
        engine = SweepEngine(workers=0, cache_dir=tmp_path)
        assert (engine.retries, engine.timeout, engine.backoff) \
            == (0, 0.0, 0.05)
        monkeypatch.setenv("REPRO_JOB_RETRIES", "3")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_JOB_BACKOFF", "0.5")
        assert (engine.retries, engine.timeout, engine.backoff) \
            == (3, 12.5, 0.5)
        pinned = SweepEngine(workers=0, cache_dir=tmp_path, retries=1,
                             timeout=2.0, backoff=0.1)
        assert (pinned.retries, pinned.timeout, pinned.backoff) \
            == (1, 2.0, 0.1)

    def test_bad_on_error_rejected(self, tmp_path):
        engine = SweepEngine(workers=0, cache_dir=tmp_path)
        with pytest.raises(ValueError, match="on_error"):
            engine.run([], on_error="explode")

    def test_degrade_returns_partial_results(self, tmp_path):
        from repro.faults import inject_faults

        engine = SweepEngine(workers=0, cache_dir=tmp_path)
        jobs = [SimJob.from_call(acc, "cora", "gcn")
                for acc in ("hygcn", "gcnax", "mega")]
        with inject_faults(raise_=0.5, seed=1) as injector:
            doomed = [j for j in jobs
                      if injector.plan.decide("raise", repr(j))]
            assert 0 < len(doomed) < len(jobs)  # seed picked a real split
            results = engine.run(jobs, on_error="degrade")
        assert set(results) == set(jobs) - set(doomed)
        assert {f.job for f in engine.failures} == set(doomed)
        assert engine.executed_jobs == len(jobs) - len(doomed)
        assert engine.stats()["executed"]["failed_jobs"] == len(doomed)
        engine.clear_memory()
        assert engine.failures == []

    def test_retries_recover_and_count_one_execution(self, tmp_path):
        from repro.faults import inject_faults

        engine = SweepEngine(workers=0, cache_dir=tmp_path, retries=1,
                             backoff=0.0)
        job = SimJob.from_call("mega", "cora", "gcn")
        with inject_faults(raise_=1.0):
            results = engine.run([job])
        assert job in results
        assert engine.executed_jobs == 1  # the success, not the attempts
        assert engine.failures == []

    def test_raise_mode_stores_completed_prefix(self, tmp_path):
        """Fail-fast still checkpoints: jobs that completed before the
        failure are on disk, so a rerun executes only what never ran."""
        from repro.faults import FaultPlan, InjectedFault, inject_faults

        engine = SweepEngine(workers=0, cache_dir=tmp_path)
        jobs = [SimJob.from_call(acc, "cora", "gcn")
                for acc in ("hygcn", "gcnax", "mega")]
        # Pick a (deterministic) seed whose first victim is mid-batch,
        # so there is a completed prefix to checkpoint.
        for seed in range(64):
            plan = FaultPlan(rates=(("raise", 0.5),), seed=seed)
            doomed = [i for i, j in enumerate(jobs)
                      if plan.decide("raise", repr(j))]
            if doomed and doomed[0] > 0:
                break
        else:
            pytest.fail("no seed with a mid-batch first victim")
        with inject_faults(raise_=0.5, seed=seed):
            with pytest.raises(InjectedFault):
                engine.run(jobs)
        rerun = SweepEngine(workers=0, cache_dir=tmp_path)
        rerun.run(jobs)
        assert rerun.executed_jobs == len(jobs) - doomed[0]


def test_default_engine_is_shared():
    assert get_engine() is get_engine()


class TestEnvHardening:
    """Malformed REPRO_* env values warn once and fall back (repro.envutil)."""

    @pytest.fixture(autouse=True)
    def _fresh_warnings(self):
        envutil.reset_warned()
        yield
        envutil.reset_warned()

    def test_malformed_int_warns_once_then_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "abc")
        with pytest.warns(RuntimeWarning, match="REPRO_SWEEP_WORKERS"):
            assert envutil.env_int("REPRO_SWEEP_WORKERS", 0) == 0
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert envutil.env_int("REPRO_SWEEP_WORKERS", 0) == 0

    def test_malformed_float_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "abc")
        with pytest.warns(RuntimeWarning, match="REPRO_JOB_TIMEOUT"):
            assert envutil.env_float("REPRO_JOB_TIMEOUT", 0.0) == 0.0

    def test_nan_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_BACKOFF", "nan")
        with pytest.warns(RuntimeWarning, match="REPRO_JOB_BACKOFF"):
            assert envutil.env_float("REPRO_JOB_BACKOFF", 0.05) == 0.05

    def test_values_below_minimum_are_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_RETRIES", "-3")
        assert envutil.env_int("REPRO_JOB_RETRIES", 0, minimum=0) == 0
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "-1.5")
        assert envutil.env_float("REPRO_JOB_TIMEOUT", 0.0, minimum=0.0) == 0.0

    def test_engine_survives_malformed_timeout_env(self, monkeypatch,
                                                   tmp_path):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "abc")
        monkeypatch.setenv("REPRO_JOB_RETRIES", "oops")
        engine = SweepEngine(cache_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="REPRO_JOB_TIMEOUT"):
            assert engine.timeout == 0.0
        with pytest.warns(RuntimeWarning, match="REPRO_JOB_RETRIES"):
            assert engine.retries == 0
