"""Tests for the sweep engine: parallel/serial identity, disk cache
round trips, and content-keyed invalidation."""

import pytest

from repro.eval.engine import SimJob, SweepEngine, get_engine
from repro.eval.experiments import clear_caches, simulate
from repro.perf.cache import DiskCache, cached_load_dataset, content_key
from repro.sim.accelerator import SimReport
from repro.sim.workload import build_workload

JOBS = [SimJob.from_call(name, dataset, "gcn")
        for dataset in ("cora", "citeseer")
        for name in ("hygcn", "gcnax", "mega")]


class TestSimJob:
    def test_precision_pairing(self):
        assert SimJob.from_call("mega", "cora", "gcn").precision == "degree-aware"
        assert SimJob.from_call("hygcn-8bit", "cora", "gcn").precision == "int8"
        assert SimJob.from_call("hygcn", "cora", "gcn").precision == "fp32"

    def test_variant_kwargs_sorted_and_hashable(self):
        a = SimJob.from_call("mega", "cora", "gcn",
                             {"storage": "bitmap", "condense": False})
        b = SimJob.from_call("mega", "cora", "gcn",
                             {"condense": False, "storage": "bitmap"})
        assert a == b and hash(a) == hash(b)
        assert a.variant_label == "condense=False+storage=bitmap"

    def test_variant_on_baseline_rejected(self, sweep_engine):
        job = SimJob.from_call("hygcn", "cora", "gcn", {"condense": False})
        with pytest.raises(ValueError):
            sweep_engine.run([job])


class TestSweepEngine:
    def test_matches_pre_engine_direct_path(self, sweep_engine):
        """Engine results are bit-identical to directly-built models."""
        from repro.baselines import build_baseline
        from repro.mega import MegaModel

        graph = cached_load_dataset("cora", scale="sim")
        direct_base = build_baseline("gcnax").simulate(
            build_workload("cora", "gcn", "fp32", graph=graph))
        direct_mega = MegaModel().simulate(
            build_workload("cora", "gcn", "degree-aware", graph=graph))
        assert simulate("gcnax", "cora", "gcn") == direct_base
        assert simulate("mega", "cora", "gcn") == direct_mega

    def test_batch_deduplicates(self, sweep_engine):
        job = JOBS[0]
        reports = sweep_engine.run([job, job, job])
        assert sweep_engine.executed_jobs == 1
        assert isinstance(reports[job], SimReport)

    def test_parallel_identical_to_serial(self, sweep_engine, tmp_path):
        serial = sweep_engine.run(JOBS)
        parallel_engine = SweepEngine(workers=2,
                                      cache_dir=tmp_path / "parallel-cache")
        parallel = parallel_engine.run(JOBS)
        assert parallel_engine.executed_jobs == len(JOBS)
        assert parallel_engine.pool_used
        assert not sweep_engine.pool_used
        for job in JOBS:
            assert parallel[job] == serial[job], job

    def test_disk_cache_hit_returns_equal_report(self, sweep_engine, tmp_path):
        job = SimJob.from_call("gcnax", "cora", "gcn")
        cold = sweep_engine.run([job])[job]
        # A brand-new engine over the same store must replay from disk.
        replay_engine = SweepEngine(workers=0, cache_dir=tmp_path / "sweep-cache")
        warm = replay_engine.run([job])[job]
        assert replay_engine.executed_jobs == 0
        assert warm == cold
        assert warm is not cold  # unpickled, not the same object

    def test_memory_cache_returns_same_object(self, sweep_engine):
        a = simulate("gcnax", "cora", "gcn")
        b = simulate("gcnax", "cora", "gcn")
        assert a is b

    def test_failed_job_keeps_completed_work(self, sweep_engine, tmp_path):
        good = SimJob.from_call("gcnax", "cora", "gcn")
        bad = SimJob.from_call("gcnax", "citeseer", "gcn", {"condense": False})
        with pytest.raises(ValueError):
            sweep_engine.run([good, bad])
        # the good job was persisted before the failure surfaced
        replay = SweepEngine(workers=0, cache_dir=tmp_path / "sweep-cache")
        replay.run([good])
        assert replay.executed_jobs == 0

    def test_parallel_failed_chunk_keeps_other_chunks(self, sweep_engine, tmp_path):
        good = SimJob.from_call("gcnax", "cora", "gcn")
        bad = SimJob.from_call("gcnax", "citeseer", "gcn", {"condense": False})
        parallel_engine = SweepEngine(workers=2, cache_dir=tmp_path / "par-cache")
        with pytest.raises(ValueError):
            parallel_engine.run([good, bad])
        replay = SweepEngine(workers=0, cache_dir=tmp_path / "par-cache")
        replay.run([good])
        assert replay.executed_jobs == 0

    def test_workload_honors_every_precision(self, sweep_engine):
        """Non-standard precisions build real workloads, never fp32 proxies."""
        wl = sweep_engine.workload("cora", "gcn", "uniform-int8")
        assert wl.precision == "uniform-int8"
        assert (wl.layers[0].input_bits == 8).all()
        assert wl.layers[0].weight_bits == 8
        with pytest.raises(ValueError):
            sweep_engine.workload("cora", "gcn", "float16")

    def test_workload_disk_round_trip(self, sweep_engine, tmp_path):
        wl = sweep_engine.workload("cora", "gcn", "degree-aware")
        replay_engine = SweepEngine(workers=0, cache_dir=tmp_path / "sweep-cache")
        wl2 = replay_engine.workload("cora", "gcn", "degree-aware")
        assert wl2.name == wl.name
        assert (wl2.adjacency != wl.adjacency).nnz == 0
        for l2, l1 in zip(wl2.layers, wl.layers):
            assert (l2.input_bits == l1.input_bits).all()
            assert (l2.input_nnz == l1.input_nnz).all()


class TestCacheInvalidation:
    def test_fingerprint_stable(self, sweep_engine):
        job = SimJob.from_call("mega", "cora", "gcn")
        assert sweep_engine.job_fingerprint(job) == sweep_engine.job_fingerprint(job)

    def test_fingerprint_tracks_accelerator_config(self, sweep_engine):
        base = sweep_engine.job_fingerprint(SimJob.from_call("mega", "cora", "gcn"))
        ablated = sweep_engine.job_fingerprint(
            SimJob.from_call("mega", "cora", "gcn", {"condense": False}))
        other_acc = sweep_engine.job_fingerprint(
            SimJob.from_call("hygcn", "cora", "gcn"))
        target = sweep_engine.job_fingerprint(
            SimJob.from_call("mega", "cora", "gcn", target_average_bits=4.0))
        assert len({base, ablated, other_acc, target}) == 4

    def test_fingerprint_tracks_graph_content(self, sweep_engine):
        same = SimJob.from_call("mega", "cora", "gcn")
        other_dataset = SimJob.from_call("mega", "citeseer", "gcn")
        other_seed = SimJob.from_call("mega", "cora", "gcn", seed=1)
        fps = {sweep_engine.job_fingerprint(j)
               for j in (same, other_dataset, other_seed)}
        assert len(fps) == 3
        assert (sweep_engine.dataset_fingerprint("cora")
                != sweep_engine.dataset_fingerprint("cora", seed=1))

    def test_clear_caches_resets_engine_state(self, sweep_engine):
        simulate("gcnax", "cora", "gcn")
        assert sweep_engine.executed_jobs == 1
        clear_caches()
        assert sweep_engine.executed_jobs == 0
        assert len(sweep_engine.reports) == 0
        # Disk survives a memory clear: the rerun replays, not recomputes.
        simulate("gcnax", "cora", "gcn")
        assert sweep_engine.executed_jobs == 0


class TestDiskCache:
    def test_round_trip_and_stats(self, tmp_path):
        cache = DiskCache("unit", directory=tmp_path)
        key = content_key("a", 1, (2, 3))
        assert cache.get(key) is None
        cache.put(key, {"x": 1.5})
        assert cache.get(key) == {"x": 1.5}
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["hits"] == 1
        assert stats["misses"] == 1 and stats["stores"] == 1

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache = DiskCache("unit", directory=tmp_path)
        key = content_key("broken")
        cache.put(key, [1, 2, 3])
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get_or_compute(key, lambda: "recomputed") == "recomputed"
        assert cache.get(key) == "recomputed"

    def test_stale_namespace_pruned_on_store(self, tmp_path):
        old = DiskCache("unit", directory=tmp_path, namespace="oldver")
        old.put(content_key("k"), "stale")
        new = DiskCache("unit", directory=tmp_path, namespace="newver")
        assert new.get(content_key("k")) is None  # namespaces are disjoint
        new.put(content_key("k"), "fresh")
        assert not old.directory.exists()  # previous version pruned
        assert new.get(content_key("k")) == "fresh"

    def test_unpicklable_value_skipped_without_disabling(self, tmp_path):
        cache = DiskCache("unit", directory=tmp_path)
        cache.put(content_key("bad"), lambda: None)  # not picklable
        assert cache.get(content_key("bad")) is None
        cache.put(content_key("good"), 7)  # store must still be active
        assert cache.get(content_key("good")) == 7
        assert not list(cache.directory.glob("*.tmp.*"))  # no leaked tmp files

    def test_unwritable_store_degrades_gracefully(self, tmp_path):
        target = tmp_path / "file-not-dir"
        target.write_text("occupied")
        cache = DiskCache("unit", directory=target / "nested")
        cache.put(content_key("k"), 1)  # cannot mkdir below a file
        assert cache.get(content_key("k")) is None
        assert cache.get_or_compute(content_key("k"), lambda: 41 + 1) == 42


class TestChunkSplitting:
    """Oversized scenarios chunk per job so one huge dataset fans out."""

    def test_small_scenarios_chunk_per_dataset(self):
        from repro.eval.engine import _chunk_key

        jobs = [SimJob.from_call(acc, "powerlaw-10k", "gcn")
                for acc in ("mega", "gcnax")]
        keys = {_chunk_key(job) for job in jobs}
        assert keys == {("powerlaw-10k", 0)}

    def test_huge_scenarios_chunk_per_job(self):
        from repro.eval.engine import _chunk_key

        jobs = [SimJob.from_call(acc, "powerlaw-500k", "gcn")
                for acc in ("mega", "gcnax")]
        keys = {_chunk_key(job) for job in jobs}
        assert keys == set(jobs)

    def test_threshold_env_knob(self, monkeypatch):
        from repro.eval.engine import _chunk_key

        job = SimJob.from_call("mega", "powerlaw-10k", "gcn")
        monkeypatch.setenv("REPRO_CHUNK_SPLIT_NODES", "5000")
        assert _chunk_key(job) == job
        monkeypatch.setenv("REPRO_CHUNK_SPLIT_NODES", "not-a-number")
        assert _chunk_key(job) == ("powerlaw-10k", 0)

    def test_paper_datasets_carry_size_hints(self):
        from repro.registry import get_dataset

        assert get_dataset("cora").size_hint == 2708
        assert get_dataset("powerlaw-500k").size_hint == 500_000
        assert get_dataset("reddit").size_hint > 0


def test_default_engine_is_shared():
    assert get_engine() is get_engine()
