"""Chaos suite: every registered experiment survives injected faults.

The acceptance bar for the fault-tolerant execution layer: with
deterministic fault injection enabled (worker kills, hangs hitting the
timeout, mid-simulation raises, corrupt cache entries, a read-only
store), every sweep runner completes and produces values bit-identical
to a fault-free run — and an interrupted sweep resumed from its journal
executes only the jobs that never finished.
"""

import multiprocessing

import pytest

from repro.eval.engine import SimJob, SweepEngine
from repro.eval.journal import RunJournal
from repro.faults import InjectedFault, inject_faults
from repro.nn import TrainConfig
from repro.registry import EXPERIMENTS
from repro.report import run_experiment

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="needs fork workers")

_TINY = TrainConfig(epochs=2, patience=100)

# Smallest meaningful parameterization per registered experiment: the
# chaos sweep runs each twice (fault-free + faulted), so keep the grids
# tiny.  test_every_experiment_is_chaos_covered pins this map to the
# registry, so a new spec must join the chaos suite to land.
QUICK_PARAMS = {
    "ablation_fig19": {},
    "accuracy_comparison": dict(cases=(("cora", "gcn"),), config=_TINY),
    "accuracy_grid": dict(cases=(("cora", "gcn"),), flows=("fp32", "dq"),
                          seeds=(0,), config=_TINY),
    "cr_sensitivity": dict(models=("gcn",), targets=(8.0,)),
    "degree_feature_magnitudes": dict(dataset="cora", models=("gcn",)),
    "dq_bitwidth_sweep": dict(dataset="cora", model="gcn", bitwidths=(4,),
                              config=_TINY),
    "dram_table": dict(workloads=(("cora", "gcn"),),
                       accelerators=("hygcn",)),
    "energy_breakdown_fig18": dict(datasets=("cora",)),
    "energy_table": dict(workloads=(("cora", "gcn"),),
                         accelerators=("hygcn",)),
    "full_comparison": dict(workloads=(("cora", "gcn"),),
                            accelerators=("hygcn", "mega")),
    "locality_study": dict(strategies=("naive", "condense")),
    "original_config_comparison": dict(datasets=("cora",)),
    "package_length_study": dict(datasets=("cora",),
                                 settings=((16, 24, 32),)),
    "speedup_table": dict(workloads=(("cora", "gcn"),),
                          accelerators=("hygcn",)),
    "stall_table": dict(datasets=("cora",)),
}


def _fresh_engine(tmp_path, tag, **kwargs) -> SweepEngine:
    return SweepEngine(workers=0, cache_dir=tmp_path / tag, **kwargs)


def _run(engine, name, fail_fast=True):
    return run_experiment(name, engine=engine, fail_fast=fail_fast,
                          **QUICK_PARAMS[name])


def _assert_identical(baseline, chaotic):
    assert chaotic.columns == baseline.columns
    assert chaotic.rows == baseline.rows
    assert "errors" not in chaotic.metadata
    assert chaotic.metadata["jobs"]["failed"] == 0


def test_every_experiment_is_chaos_covered():
    assert set(QUICK_PARAMS) == set(EXPERIMENTS.names())


@pytest.mark.parametrize("name", sorted(QUICK_PARAMS))
def test_bit_identical_under_injected_raises(name, tmp_path):
    """Every spec survives a raise on every job's first attempt, with
    results bit-identical to a fault-free run."""
    baseline = _run(_fresh_engine(tmp_path, "clean"), name)
    chaotic_engine = _fresh_engine(tmp_path, "chaos", retries=1, backoff=0.0)
    with inject_faults(raise_=1.0, seed=0):
        chaotic = _run(chaotic_engine, name)
    _assert_identical(baseline, chaotic)
    # Every job really did burn its first attempt.
    assert chaotic_engine.executed_jobs == baseline.metadata["jobs"]["executed"]


class TestSerialChaos:
    def test_no_retry_budget_degrades_with_partial_rows(self, tmp_path):
        engine = _fresh_engine(tmp_path, "deg", retries=0)
        with inject_faults(raise_=0.5, seed=2):
            artifact = _run(engine, "stall_table", fail_fast=False)
        failed = artifact.metadata["jobs"]["failed"]
        assert failed == len(engine.failures) > 0
        assert len(artifact.metadata["errors"]) == failed
        for error in artifact.metadata["errors"]:
            assert error["error_type"] == "InjectedFault"
            assert error["attempts"] == 1
            assert error["kind"] == "error"
            assert error["fingerprint"]

    def test_fail_fast_reraises_the_injected_fault(self, tmp_path):
        engine = _fresh_engine(tmp_path, "ff", retries=0)
        with inject_faults(raise_=1.0, seed=0):
            with pytest.raises(InjectedFault):
                _run(engine, "stall_table", fail_fast=True)

    def test_hang_is_cut_by_the_job_deadline(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "0.5")
        baseline = _run(_fresh_engine(tmp_path, "clean"), "stall_table")
        engine = _fresh_engine(tmp_path, "hang", retries=1, backoff=0.0)
        with inject_faults(hang=1.0, seed=0):
            chaotic = _run(engine, "stall_table")
        _assert_identical(baseline, chaotic)

    def test_corrupt_cache_entries_are_recomputed(self, tmp_path):
        engine = _fresh_engine(tmp_path, "corrupt")
        with inject_faults(corrupt_cache=1.0), pytest.warns(
                RuntimeWarning, match="corrupt"):
            first = _run(engine, "stall_table")
            # Every persisted entry reads back torn: each is dropped
            # (counted, warned once) and every job re-executes instead
            # of serving a corrupt result.
            engine.clear_memory()
            second = _run(engine, "stall_table")
        assert second.rows == first.rows
        assert engine.disk.corrupt_drops > 0
        assert (second.metadata["jobs"]["executed"]
                == first.metadata["jobs"]["executed"] > 0)

    def test_readonly_cache_degrades_to_memory_only(self, tmp_path):
        engine = _fresh_engine(tmp_path, "ro")
        baseline = _run(_fresh_engine(tmp_path, "clean"), "stall_table")
        with inject_faults(cache_readonly=1.0), pytest.warns(
                RuntimeWarning, match="memory-only"):
            artifact = _run(engine, "stall_table")
        _assert_identical(baseline, artifact)
        stats = artifact.metadata["cache"]
        assert stats["write_failures"] > 0
        assert stats["entries"] == 0  # nothing persisted...
        engine.clear_memory()
        rerun = _run(engine, "stall_table")  # ...but reruns still work
        assert rerun.rows == baseline.rows


class TestArtifactChaos:
    """The artifact store under injected corruption and torn publishes:
    rows stay bit-identical, corruption is quarantined (never served),
    and verify leaves a clean corpus behind."""

    def test_corrupt_artifacts_quarantined_and_rebuilt(self, tmp_path):
        baseline = _run(_fresh_engine(tmp_path, "clean"), "stall_table")
        engine = _fresh_engine(tmp_path, "qa")
        with inject_faults(corrupt_artifact=1.0), pytest.warns(
                RuntimeWarning, match="quarantined"):
            first = _run(engine, "stall_table")
            # Every published job artifact reads back corrupt: the warm
            # path quarantines each one and re-executes instead of
            # serving damaged results.
            engine.clear_memory()
            second = _run(engine, "stall_table")
        _assert_identical(baseline, first)
        _assert_identical(baseline, second)
        assert engine.artifacts.quarantined > 0
        assert (second.metadata["jobs"]["executed"]
                == first.metadata["jobs"]["executed"] > 0)
        # Fault lifted: the next reference rebuilds a clean corpus.
        engine.artifacts.verify()
        engine.clear_memory()
        third = _run(engine, "stall_table")
        assert third.rows == baseline.rows
        clean = engine.artifacts.verify()
        assert clean["quarantined"] == []
        assert clean["ok"] == clean["checked"] > 0

    def test_torn_publishes_never_leave_partial_entries(self, tmp_path):
        baseline = _run(_fresh_engine(tmp_path, "clean"), "stall_table")
        engine = _fresh_engine(tmp_path, "torn")
        with inject_faults(torn_rename=1.0):
            first = _run(engine, "stall_table")
        _assert_identical(baseline, first)
        # Every publish was abandoned pre-rename: nothing half-written
        # is visible, and verify finds zero undetected corruptions.
        report = engine.artifacts.verify()
        assert report["checked"] == report["ok"] == 0
        assert report["quarantined"] == []
        engine.clear_memory()
        second = _run(engine, "stall_table")
        _assert_identical(baseline, second)
        assert engine.artifacts.stats()["objects"] > 0  # clean republish


@needs_fork
class TestParallelChaos:
    def test_worker_kills_are_survived_bit_identically(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SPLIT_NODES", "1")  # chunk per job
        baseline = _run(_fresh_engine(tmp_path, "clean"), "speedup_table")
        engine = SweepEngine(workers=2, cache_dir=tmp_path / "kill",
                             retries=2, backoff=0.0)
        with inject_faults(kill=0.5, seed=0) as injector:
            chaotic = _run(engine, "speedup_table")
            # The plan really targets jobs in this batch (the parent
            # cannot see worker-side firing counters).
            assert any(
                injector.plan.decide("kill", repr(job))
                for job in (SimJob.from_call(acc, ds, model)
                            for acc in ("hygcn", "mega")
                            for ds, model in QUICK_PARAMS[
                                "speedup_table"]["workloads"]))
        _assert_identical(baseline, chaotic)
        assert engine.pool_used

    def test_mid_batch_casualty_loses_only_its_own_jobs(self, tmp_path,
                                                        monkeypatch):
        """A worker killed mid-batch under batched simulation costs only
        the jobs it had not yet reported: everything already streamed
        back stays persisted, the requeued tail re-prepares in a fresh
        worker, and the final results are bit-identical to a fault-free
        scalar run."""
        jobs = [SimJob.from_call(name, "cora", "gcn",
                                 target_average_bits=target)
                for name in ("mega", "mega-no-condense", "mega-bitmap")
                for target in (None, 3.0, 4.0, 5.0, 6.0)]
        baseline_engine = _fresh_engine(tmp_path, "clean", batch=False)
        baseline = baseline_engine.run(jobs)
        assert not baseline_engine.batch_used

        engine = SweepEngine(workers=2, cache_dir=tmp_path / "batch-kill",
                             retries=3, backoff=0.0, batch=True)
        with inject_faults(kill=0.2, corrupt_cache=(1.0, 1),
                           seed=3) as injector:
            chaotic = engine.run(jobs)
            killed = [job for job in jobs
                      if injector.plan.decide("kill", repr(job))]
            assert killed, "the plan must target at least one batch member"
        assert engine.batch_used and sum(engine.batch_sizes) == len(jobs)
        assert all(chaotic[job] == baseline[job] for job in jobs)
        # Only the casualties burned attempts: every job landed exactly
        # once (survivors from the batch were never re-executed).
        assert engine.executed_jobs == len(jobs)
        assert not engine.failures

    def test_mixed_chaos_parallel_sweep(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SPLIT_NODES", "1")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "5")
        baseline = _run(_fresh_engine(tmp_path, "clean"), "stall_table")
        engine = SweepEngine(workers=2, cache_dir=tmp_path / "mix",
                             retries=3, backoff=0.0)
        with inject_faults(kill=0.3, raise_=0.3, corrupt_cache=(1.0, 1),
                           seed=1):
            chaotic = _run(engine, "stall_table")
        _assert_identical(baseline, chaotic)


class TestResume:
    def test_resume_executes_only_remaining_jobs(self, tmp_path):
        cache = tmp_path / "shared"
        jobs = [SimJob.from_call(acc, "cora", "gcn")
                for acc in ("hygcn", "gcnax", "mega")]

        # "Interrupted" run: only part of the batch ever completed.
        first = SweepEngine(workers=0, cache_dir=cache,
                            journal=RunJournal.create(spec={},
                                                      directory=cache))
        first.run(jobs[:2])
        assert first.executed_jobs == 2
        journaled = RunJournal.load(first.journal.run_id, directory=cache)
        already_done = len(journaled.completed_jobs())
        assert already_done == 2

        # Resume: same store, full batch — only the missing job runs.
        resumed = SweepEngine(workers=0, cache_dir=cache, journal=journaled)
        results = resumed.run(jobs)
        assert len(results) == 3
        assert resumed.executed_jobs == len(jobs) - already_done
        assert len(journaled.completed_jobs()) == 3

    def test_journal_records_failures(self, tmp_path):
        cache = tmp_path / "shared"
        engine = SweepEngine(workers=0, cache_dir=cache, retries=0,
                             journal=RunJournal.create(spec={},
                                                       directory=cache))
        with inject_faults(raise_=1.0):
            engine.run([SimJob.from_call("mega", "cora", "gcn")],
                       on_error="degrade")
        loaded = RunJournal.load(engine.journal.run_id, directory=cache)
        assert len(loaded.failed_jobs()) == 1
        record = [r for r in loaded.records if r.get("status") == "failed"][0]
        assert "InjectedFault" in record["error"]

    def test_artifact_carries_run_id(self, tmp_path):
        engine = SweepEngine(workers=0, cache_dir=tmp_path / "c",
                             journal=RunJournal.create(
                                 spec={}, directory=tmp_path / "c"))
        artifact = _run(engine, "stall_table")
        assert artifact.metadata["run_id"] == engine.journal.run_id
        loaded = RunJournal.load(engine.journal.run_id,
                                 directory=tmp_path / "c")
        assert loaded.completed_experiments() == {"stall_table"}


class TestFleetChaos:
    """Tentpole acceptance: a fresh-cache worker replaying a served
    corpus through a hostile network executes zero jobs, stays
    bit-identical to local execution, and never publishes a corrupt
    payload — every rejected transfer is retried (with backoff) or
    degraded, never trusted."""

    def test_fresh_worker_replays_through_hostile_network(self, tmp_path):
        from repro.eval.engine import temporary_cache_dir
        from repro.remote import RemoteStore
        from repro.serve import ServeConfig, ServerThread

        server_cache = tmp_path / "server-cache"
        warm = SweepEngine(workers=0, cache_dir=server_cache)
        baseline = _run(warm, "stall_table")
        assert warm.executed_jobs > 0
        assert warm.artifacts.stats()["objects"] > 0

        spec = "net_truncate=0.4,net_corrupt=0.4,net_503=0.3,net_stall=0.2"
        with temporary_cache_dir(server_cache):
            with ServerThread(ServeConfig(port=0, quiet=True)) as handle:
                with inject_faults(spec, seed=13):
                    worker = _fresh_engine(tmp_path, "worker")
                    worker.remote = RemoteStore(url=handle.url,
                                                store=worker.artifacts,
                                                backoff=0.01)
                    replayed = _run(worker, "stall_table")
                server_counters = dict(handle.server.counters)

        # Zero jobs executed: the whole corpus came over the wire.
        assert worker.executed_jobs == 0
        _assert_identical(baseline, replayed)
        remote = worker.stats()["remote"]
        assert remote["hits"] > 0 and remote["failures"] == 0
        # The chaos actually bit — damaged transfers were rejected and
        # re-pulled, and the server injected wire faults.
        assert remote["rejected"] + remote["resumed"] > 0
        assert server_counters["net_faults"] > 0
        assert server_counters["artifact_hits"] > 0
        # Zero corrupt payloads were ever published on the worker:
        # every local entry re-hashes and re-derives clean.
        report = worker.artifacts.verify()
        assert report["ok"] == report["checked"] > 0
        assert report["quarantined"] == [] and report["dual_layout"] == []

    def test_hostile_network_never_hangs_an_unserved_sweep(self, tmp_path):
        """A worker whose remote holds nothing (or keeps failing)
        degrades to local execution — never a hung or failed sweep."""
        from repro.remote import RemoteStore

        baseline = _run(_fresh_engine(tmp_path, "clean"), "stall_table")
        worker = _fresh_engine(tmp_path, "orphan")
        worker.remote = RemoteStore(url="127.0.0.1:1", store=worker.artifacts,
                                    retries=0, backoff=0.01, timeout=2.0)
        replayed = _run(worker, "stall_table")
        assert worker.executed_jobs > 0  # degraded to execution
        _assert_identical(baseline, replayed)
        assert worker.stats()["remote"]["failures"] > 0
