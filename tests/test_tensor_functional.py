"""Tests for repro.tensor.functional: softmax family, losses, segments."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)).astype(np.float32))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5), atol=1e-6)

    def test_softmax_stability_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        out = F.softmax(x)
        np.testing.assert_allclose(out.data, [[0.5, 0.5]], atol=1e-6)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(1).normal(size=(3, 6)).astype(np.float32))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-5)

    def test_log_softmax_gradient(self):
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3)).astype(np.float32),
                   requires_grad=True)
        F.log_softmax(x)[(np.array([0, 1]), np.array([1, 2]))].sum().backward()
        # Gradient of log-softmax picked entries: one-hot minus softmax.
        probs = F.softmax(Tensor(x.data)).data
        expected = -probs.copy()
        expected[0, 1] += 1
        expected[1, 2] += 1
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)


class TestLosses:
    def test_nll_loss_value(self):
        logp = Tensor(np.log(np.array([[0.7, 0.3], [0.2, 0.8]], dtype=np.float32)))
        loss = F.nll_loss(logp, np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert float(loss.data) == pytest.approx(expected, rel=1e-5)

    def test_nll_loss_mask(self):
        logp = Tensor(np.log(np.array([[0.7, 0.3], [0.2, 0.8]], dtype=np.float32)))
        loss = F.nll_loss(logp, np.array([0, 1]), mask=np.array([True, False]))
        assert float(loss.data) == pytest.approx(-np.log(0.7), rel=1e-5)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 3), dtype=np.float32))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=int))
        assert float(loss.data) == pytest.approx(np.log(3), rel=1e-5)

    def test_mse(self):
        a = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        b = Tensor(np.array([0.0, 0.0], dtype=np.float32))
        assert float(F.mse_loss(a, b).data) == pytest.approx(2.5)


class TestDropout:
    def test_identity_at_eval(self):
        x = Tensor(np.ones((10, 10), dtype=np.float32))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_inverted_scaling_preserves_mean(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, 0.4, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_rate_is_identity(self):
        x = Tensor(np.ones(5, dtype=np.float32))
        assert F.dropout(x, 0.0, training=True) is x


class TestSegments:
    def test_segment_sum_values(self):
        vals = Tensor(np.array([[1.0], [2.0], [3.0]], dtype=np.float32))
        out = F.segment_sum(vals, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [3.0]])

    def test_segment_sum_gradient_is_gather(self):
        vals = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        F.segment_sum(vals, np.array([1, 1, 0]), 2).sum().backward()
        np.testing.assert_allclose(vals.grad, np.ones((3, 2)))

    def test_segment_softmax_sums_to_one_per_segment(self):
        scores = Tensor(np.random.default_rng(3).normal(size=6).astype(np.float32))
        seg = np.array([0, 0, 1, 1, 1, 2])
        out = F.segment_softmax(scores, seg, 3)
        for s in range(3):
            assert out.data[seg == s].sum() == pytest.approx(1.0, abs=1e-5)


class TestMetrics:
    def test_accuracy_full(self):
        logits = Tensor(np.array([[2.0, 1.0], [0.0, 3.0]], dtype=np.float32))
        assert F.accuracy(logits, np.array([0, 1])) == 1.0

    def test_accuracy_masked(self):
        logits = Tensor(np.array([[2.0, 1.0], [5.0, 3.0]], dtype=np.float32))
        acc = F.accuracy(logits, np.array([0, 1]), mask=np.array([False, True]))
        assert acc == 0.0

    def test_one_hot(self):
        oh = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(oh, [[1, 0, 0], [0, 0, 1]])
